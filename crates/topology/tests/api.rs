//! Public-API regression tests for `aspp-topology`.

use aspp_topology::gen::{InternetConfig, CONTENT_BASE, STUB_BASE, TIER1_BASE};
use aspp_topology::infer::{consensus_infer, gao_infer, InferParams, InferenceAccuracy};
use aspp_topology::io::{from_caida, to_caida};
use aspp_topology::metrics::{degree_distribution, GraphStats};
use aspp_topology::tier::{customer_cone, TierMap};
use aspp_topology::AsGraph;
use aspp_types::{AsPath, Asn, Relationship};

#[test]
fn generated_internet_survives_caida_round_trip_with_tiers_intact() {
    let graph = InternetConfig::small().seed(123).build();
    let reparsed = from_caida(&to_caida(&graph)).unwrap();
    let tiers_a = TierMap::classify(&graph);
    let tiers_b = TierMap::classify(&reparsed);
    for asn in graph.asns() {
        assert_eq!(tiers_a.tier_of(asn), tiers_b.tier_of(asn), "tier of {asn}");
    }
}

#[test]
fn graph_stats_and_degree_distribution_agree() {
    let graph = InternetConfig::small().seed(5).build();
    let stats = GraphStats::compute(&graph);
    let hist = degree_distribution(&graph);
    let total_degree: usize = hist.iter().map(|(&d, &n)| d * n).sum();
    assert_eq!(total_degree, stats.link_count * 2);
    assert_eq!(hist.keys().max().copied().unwrap(), stats.max_degree);
}

#[test]
fn customer_cones_nest_along_provider_chains() {
    let graph = InternetConfig::small().seed(6).build();
    // Every provider's cone contains each of its customers' cones.
    let mut checked = 0;
    for provider in graph.asns().take(30) {
        let provider_cone = customer_cone(&graph, provider);
        for customer in graph.customers(provider) {
            let customer_cone_set = customer_cone(&graph, customer);
            assert!(
                customer_cone_set.is_subset(&provider_cone),
                "cone of {customer} not within cone of {provider}"
            );
            checked += 1;
        }
    }
    assert!(checked > 10, "enough nesting cases exercised");
}

#[test]
fn tier1_cone_union_covers_everything() {
    let graph = InternetConfig::small().seed(7).build();
    let tiers = TierMap::classify(&graph);
    let mut covered = std::collections::HashSet::new();
    for t1 in tiers.tier1() {
        covered.extend(customer_cone(&graph, t1));
    }
    assert_eq!(covered.len(), graph.len(), "core cones cover the Internet");
}

#[test]
fn asn_blocks_encode_roles() {
    let graph = InternetConfig::small().seed(8).build();
    let tiers = TierMap::classify(&graph);
    // Tier-1 block members are tier-1; stub-block members have no customers.
    assert_eq!(tiers.tier_of(Asn(TIER1_BASE)), Some(1));
    assert!(tiers.is_stub(&graph, Asn(STUB_BASE)));
    assert!(graph.peers(Asn(CONTENT_BASE)).count() > 5);
}

#[test]
fn inference_accuracy_on_rich_path_corpus() {
    // Build a corpus of hand-derivable valley-free paths: every stub pair
    // through the hierarchy, as produced by a prior routing run and saved.
    let graph = InternetConfig::small()
        .tier2_count(8)
        .tier3_count(8)
        .stub_count(16)
        .seed(9)
        .build();
    // Synthesize simple up-over-down paths: stub -> provider -> ... via
    // breadth-first provider chains to a tier-1, then down to another stub.
    let tiers = TierMap::classify(&graph);
    let mut paths: Vec<AsPath> = Vec::new();
    let stubs: Vec<Asn> = graph
        .asns()
        .filter(|&a| tiers.is_stub(&graph, a))
        .take(12)
        .collect();
    for &s in &stubs {
        for &d in &stubs {
            if s == d {
                continue;
            }
            if let (Some(up), Some(down)) = (provider_chain(&graph, s), provider_chain(&graph, d)) {
                // up: s..tier1a ; down: d..tier1b — join over the clique.
                let mut hops: Vec<Asn> = Vec::new();
                hops.extend(up.iter().rev()); // tier1a .. s reversed => s..? fix below
                hops.reverse(); // s .. tier1a
                let mut travel = hops; // travel order: s first
                let tier1a = *travel.last().unwrap();
                let tier1b = *down.last().unwrap();
                if tier1a != tier1b {
                    travel.push(tier1b);
                }
                travel.extend(down.iter().rev().skip(1)); // tier1b.. d minus dup
                travel.reverse(); // most-recent-first: d side first? monitor at s
                paths.push(AsPath::from_hops(travel));
            }
        }
    }
    assert!(paths.len() > 50);
    let mut t1: Vec<Asn> = tiers.tier1().collect();
    t1.sort();
    let seed: Vec<(Asn, Asn)> = t1
        .iter()
        .enumerate()
        .flat_map(|(i, &a)| t1[i + 1..].iter().map(move |&b| (a, b)))
        .collect();
    let inferred = consensus_infer(&paths, &seed, InferParams::default());
    let acc = InferenceAccuracy::compare(&graph, &inferred);
    assert!(
        acc.accuracy() > 0.55,
        "hand-built corpus accuracy {:.2}",
        acc.accuracy()
    );
}

fn provider_chain(graph: &AsGraph, from: Asn) -> Option<Vec<Asn>> {
    // Walks lowest-ASN providers up to a provider-free AS.
    let mut chain = vec![from];
    let mut current = from;
    for _ in 0..12 {
        match graph.providers(current).min() {
            Some(p) => {
                chain.push(p);
                current = p;
            }
            None => return Some(chain),
        }
    }
    None
}

#[test]
fn gao_is_deterministic() {
    let graph = InternetConfig::small().seed(10).build();
    let paths: Vec<AsPath> = graph
        .asns()
        .take(20)
        .filter_map(|a| provider_chain(&graph, a))
        .map(AsPath::from_hops)
        .collect();
    let a = gao_infer(&paths, &[], InferParams::default());
    let b = gao_infer(&paths, &[], InferParams::default());
    let la: Vec<_> = {
        let mut v: Vec<_> = a.links().collect();
        v.sort();
        v
    };
    let lb: Vec<_> = {
        let mut v: Vec<_> = b.links().collect();
        v.sort();
        v
    };
    assert_eq!(la, lb);
}

#[test]
fn remove_link_then_relink_changes_relationship() {
    let mut g = AsGraph::new();
    g.add_provider_customer(Asn(1), Asn(2)).unwrap();
    assert_eq!(g.remove_link(Asn(1), Asn(2)), Some(Relationship::Customer));
    g.add_peering(Asn(1), Asn(2)).unwrap();
    assert_eq!(g.relationship(Asn(1), Asn(2)), Some(Relationship::Peer));
    assert_eq!(g.link_count(), 1);
}

#[test]
fn builder_presets_scale_monotonically() {
    let small = InternetConfig::small();
    let medium = InternetConfig::medium();
    let large = InternetConfig::large();
    assert!(small.total_ases() < medium.total_ases());
    assert!(medium.total_ases() < large.total_ases());
}
