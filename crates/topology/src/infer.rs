//! AS relationship inference from observed AS paths.
//!
//! Section IV-A of the paper builds its topology by (1) running Gao's
//! algorithm seeded with tier-1 peering links, (2) running CAIDA's algorithm,
//! (3) taking the relationship pairs on which both agree, and (4) re-running
//! Gao's algorithm with that agreement set as the new seed. This module
//! implements all four steps:
//!
//! * [`gao_infer`] — Gao's degree-based uphill/downhill vote algorithm;
//! * [`degree_infer`] — a degree-ratio + top-clique algorithm standing in
//!   for CAIDA's method;
//! * [`consensus_infer`] — the paper's combination pipeline;
//! * [`InferenceAccuracy`] — validation against a ground-truth graph
//!   (available here because our topologies are generated).

use std::collections::{HashMap, HashSet};

use aspp_types::{AsPath, Asn, Relationship};

use crate::AsGraph;

/// Tuning parameters for the inference algorithms.
#[derive(Clone, Copy, Debug)]
pub struct InferParams {
    /// Degree-ratio band within which two adjacent ASes are considered
    /// peering candidates (Gao's `R`).
    pub peer_degree_ratio: f64,
    /// Minimum conflicting votes in both directions before an edge is
    /// classified as sibling (Gao's `L`).
    pub sibling_vote_threshold: usize,
}

impl Default for InferParams {
    fn default() -> Self {
        InferParams {
            peer_degree_ratio: 2.5,
            sibling_vote_threshold: 2,
        }
    }
}

/// An edge key with canonical (ascending) orientation.
fn key(a: Asn, b: Asn) -> (Asn, Asn) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Collapses an observed [`AsPath`] into travel order (origin first) with
/// prepends removed; returns `None` for paths too short to carry edges or
/// containing loops (which real inference pipelines discard).
fn travel_order(path: &AsPath) -> Option<Vec<Asn>> {
    if path.has_loop() {
        return None;
    }
    let mut collapsed = path.collapsed();
    if collapsed.len() < 2 {
        return None;
    }
    collapsed.reverse();
    Some(collapsed)
}

/// Degree of each AS as seen in the path corpus (number of distinct
/// neighbors over all collapsed paths).
fn observed_degrees(paths: &[AsPath]) -> HashMap<Asn, usize> {
    let mut neighbors: HashMap<Asn, HashSet<Asn>> = HashMap::new();
    for path in paths {
        if let Some(tp) = travel_order(path) {
            for w in tp.windows(2) {
                neighbors.entry(w[0]).or_default().insert(w[1]);
                neighbors.entry(w[1]).or_default().insert(w[0]);
            }
        }
    }
    neighbors.into_iter().map(|(a, s)| (a, s.len())).collect()
}

/// Gao's relationship-inference algorithm.
///
/// For every loop-free path the highest-degree AS is taken as the *top
/// provider*; edges on the origin side of the top vote "uphill"
/// (customer→provider) and edges past it vote "downhill". Majority voting
/// classifies each edge; heavy conflict marks siblings; finally, edges
/// adjacent to the top whose endpoint degrees are within
/// [`InferParams::peer_degree_ratio`] and whose votes do not clearly favor
/// one direction are classified as peering. Links in `seed_peers` are fixed
/// as peering a priori (the paper seeds with tier-1 links).
///
/// # Example
///
/// ```
/// use aspp_topology::infer::{gao_infer, InferParams};
/// use aspp_types::{AsPath, Asn, Relationship};
///
/// // Monitors observe stubs 11-14 reaching each other through hub AS1.
/// let mut paths: Vec<AsPath> = Vec::new();
/// for a in 11u32..15 {
///     for b in 11u32..15 {
///         if a != b {
///             paths.push(format!("{a} 1 {b}").parse().unwrap());
///         }
///     }
/// }
///
/// let inferred = gao_infer(&paths, &[], InferParams::default());
/// assert_eq!(inferred.relationship(Asn(1), Asn(11)), Some(Relationship::Customer));
/// assert_eq!(inferred.relationship(Asn(12), Asn(1)), Some(Relationship::Provider));
/// ```
#[must_use]
pub fn gao_infer(paths: &[AsPath], seed_peers: &[(Asn, Asn)], params: InferParams) -> AsGraph {
    let degrees = observed_degrees(paths);
    let seed: HashSet<(Asn, Asn)> = seed_peers.iter().map(|&(a, b)| key(a, b)).collect();

    // votes[(a,b)] with a < b: (votes that b provides a, votes that a provides b)
    let mut votes: HashMap<(Asn, Asn), (usize, usize)> = HashMap::new();
    // Per edge: (appearances adjacent to the path's top provider, total
    // appearances). A valley-free path crosses a peering link only at its
    // top, so an edge that *ever* appears away from a top is transited —
    // customer-provider, not peering.
    let mut top_stats: HashMap<(Asn, Asn), (usize, usize)> = HashMap::new();

    for path in paths {
        let Some(tp) = travel_order(path) else {
            continue;
        };
        let top = (0..tp.len())
            .max_by_key(|&i| (degrees.get(&tp[i]).copied().unwrap_or(0), usize::MAX - i))
            .unwrap_or(0);
        for i in 0..tp.len() - 1 {
            let (u, v) = (tp[i], tp[i + 1]);
            let k = key(u, v);
            let entry = votes.entry(k).or_insert((0, 0));
            // i < top: traveling uphill, v provides u. i >= top: downhill, u provides v.
            let provider_is_v = i < top;
            let provider = if provider_is_v { v } else { u };
            if provider == k.1 {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
            let stats = top_stats.entry(k).or_insert((0, 0));
            stats.1 += 1;
            if i + 1 == top || i == top {
                stats.0 += 1;
            }
        }
    }

    let mut out = AsGraph::new();
    for (&(a, b), &(b_provides, a_provides)) in &votes {
        let (top_hits, appearances) = top_stats.get(&(a, b)).copied().unwrap_or((0, 0));
        let rel = if seed.contains(&(a, b)) {
            Relationship::Peer
        } else if b_provides >= params.sibling_vote_threshold
            && a_provides >= params.sibling_vote_threshold
            && b_provides.max(a_provides) <= 3 * b_provides.min(a_provides)
        {
            // Sibling: sustained, *balanced* conflict — routes genuinely flow
            // both ways across the link. One-sided noise from occasional
            // top-provider misidentification must not count.
            Relationship::Sibling
        } else {
            let da = degrees.get(&a).copied().unwrap_or(1).max(1) as f64;
            let db = degrees.get(&b).copied().unwrap_or(1).max(1) as f64;
            let ratio = if da > db { da / db } else { db / da };
            // Peering: similar degrees and never observed away from a top.
            if appearances > 0 && top_hits == appearances && ratio <= params.peer_degree_ratio {
                Relationship::Peer
            } else if b_provides >= a_provides {
                // b provides a: from a's perspective b is its provider.
                Relationship::Provider
            } else {
                Relationship::Customer
            }
        };
        let _ = out.add_link(a, b, rel);
    }
    out
}

/// Degree-ratio inference (CAIDA-style stand-in).
///
/// The ASes whose observed degree is within a factor of
/// [`InferParams::peer_degree_ratio`] of the maximum form a *top clique* and
/// peer with each other; any other edge is classified by degree ratio: near
/// parity ⇒ peer, otherwise the higher-degree side is the provider.
#[must_use]
pub fn degree_infer(paths: &[AsPath], params: InferParams) -> AsGraph {
    let degrees = observed_degrees(paths);
    let max_degree = degrees.values().copied().max().unwrap_or(0) as f64;
    let clique: HashSet<Asn> = degrees
        .iter()
        .filter(|&(_, &d)| d as f64 * params.peer_degree_ratio >= max_degree)
        .map(|(&a, _)| a)
        .collect();

    let mut edges: HashSet<(Asn, Asn)> = HashSet::new();
    for path in paths {
        if let Some(tp) = travel_order(path) {
            for w in tp.windows(2) {
                edges.insert(key(w[0], w[1]));
            }
        }
    }

    let mut out = AsGraph::new();
    for (a, b) in edges {
        let da = degrees.get(&a).copied().unwrap_or(1).max(1) as f64;
        let db = degrees.get(&b).copied().unwrap_or(1).max(1) as f64;
        let ratio = if da > db { da / db } else { db / da };
        let rel_of_b =
            if (clique.contains(&a) && clique.contains(&b)) || ratio <= params.peer_degree_ratio {
                Relationship::Peer
            } else if da > db {
                // a is the bigger AS: b is a's customer.
                Relationship::Customer
            } else {
                Relationship::Provider
            };
        let _ = out.add_link(a, b, rel_of_b);
    }
    out
}

/// The paper's consensus pipeline (Section IV-A): run [`gao_infer`] seeded
/// with tier-1 peers, run [`degree_infer`], take the links on which both
/// agree, and re-run Gao with the agreed peer set as seed.
#[must_use]
pub fn consensus_infer(
    paths: &[AsPath],
    tier1_seed: &[(Asn, Asn)],
    params: InferParams,
) -> AsGraph {
    let gao = gao_infer(paths, tier1_seed, params);
    let deg = degree_infer(paths, params);

    let mut agreed_peers: Vec<(Asn, Asn)> = tier1_seed.to_vec();
    for (a, b, rel) in gao.links() {
        if deg.relationship(a, b) == Some(rel) && rel == Relationship::Peer {
            agreed_peers.push((a, b));
        }
    }
    gao_infer(paths, &agreed_peers, params)
}

/// Agreement between an inferred graph and ground truth.
///
/// # Example
///
/// ```
/// use aspp_topology::{AsGraph, infer::InferenceAccuracy};
/// use aspp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut truth = AsGraph::new();
/// truth.add_provider_customer(Asn(1), Asn(2))?;
/// let acc = InferenceAccuracy::compare(&truth, &truth);
/// assert_eq!(acc.accuracy(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InferenceAccuracy {
    /// Links present in both graphs with identical relationship.
    pub agreeing: usize,
    /// Links present in both graphs with differing relationship.
    pub conflicting: usize,
    /// Ground-truth links absent from the inferred graph.
    pub missing: usize,
    /// Inferred links absent from ground truth.
    pub spurious: usize,
}

impl InferenceAccuracy {
    /// Compares `inferred` against `truth` link by link.
    #[must_use]
    pub fn compare(truth: &AsGraph, inferred: &AsGraph) -> Self {
        let mut acc = InferenceAccuracy::default();
        for (a, b, rel) in truth.links() {
            match inferred.relationship(a, b) {
                Some(r) if r == rel => acc.agreeing += 1,
                Some(_) => acc.conflicting += 1,
                None => acc.missing += 1,
            }
        }
        for (a, b, _) in inferred.links() {
            if truth.relationship(a, b).is_none() {
                acc.spurious += 1;
            }
        }
        acc
    }

    /// Fraction of commonly-observed links whose relationship matches.
    /// Returns 1.0 when no links are common (vacuous agreement).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let common = self.agreeing + self.conflicting;
        if common == 0 {
            1.0
        } else {
            self.agreeing as f64 / common as f64
        }
    }

    /// Fraction of ground-truth links observed at all.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.agreeing + self.conflicting + self.missing;
        if total == 0 {
            1.0
        } else {
            (self.agreeing + self.conflicting) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths(specs: &[&str]) -> Vec<AsPath> {
        specs.iter().map(|s| s.parse().unwrap()).collect()
    }

    /// Star topology: AS1 provides for stubs 10..14; plenty of paths
    /// between stubs traverse AS1 as the top provider.
    fn star_paths() -> Vec<AsPath> {
        let mut out = Vec::new();
        for a in 10..15u32 {
            for b in 10..15u32 {
                if a != b {
                    out.push(format!("{a} 1 {b}").parse().unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn gao_infers_star_provider() {
        let inferred = gao_infer(&star_paths(), &[], InferParams::default());
        for stub in 10..15u32 {
            assert_eq!(
                inferred.relationship(Asn(1), Asn(stub)),
                Some(Relationship::Customer),
                "AS1 should provide AS{stub}"
            );
        }
    }

    #[test]
    fn gao_respects_seed_peers() {
        // Two cores 1,2 with stubs; seeding forces 1-2 to peer.
        let corpus = paths(&[
            "10 1 2 20",
            "20 2 1 10",
            "11 1 2 20",
            "20 2 1 11",
            "10 1 11",
            "11 1 10",
            "20 2 21",
            "21 2 20",
        ]);
        let inferred = gao_infer(&corpus, &[(Asn(1), Asn(2))], InferParams::default());
        assert_eq!(
            inferred.relationship(Asn(1), Asn(2)),
            Some(Relationship::Peer)
        );
    }

    #[test]
    fn gao_discards_looped_and_trivial_paths() {
        let corpus = paths(&["1", "1 2 1", ""]);
        let inferred = gao_infer(&corpus, &[], InferParams::default());
        assert!(inferred.is_empty());
    }

    #[test]
    fn gao_collapses_prepending_before_voting() {
        // Prepends must not distort edges or degrees.
        let corpus = paths(&[
            "10 1 20 20 20",
            "20 1 10 10",
            "11 1 20",
            "20 1 11",
            "10 1 11",
            "11 1 10",
        ]);
        let inferred = gao_infer(&corpus, &[], InferParams::default());
        assert_eq!(
            inferred.relationship(Asn(1), Asn(20)),
            Some(Relationship::Customer)
        );
    }

    #[test]
    fn sibling_detected_on_conflicting_votes() {
        // Edge 5-6 is traversed both uphill and downhill repeatedly
        // relative to top provider 1.
        let corpus = paths(&[
            "5 6 1 10", "5 6 1 11", "6 5 1 10", "6 5 1 11", "10 1 6 5", "11 1 6 5", "10 1 5 6",
            "11 1 5 6",
        ]);
        let params = InferParams {
            sibling_vote_threshold: 2,
            peer_degree_ratio: 1.1, // keep the peer heuristic out of the way
        };
        let inferred = gao_infer(&corpus, &[], params);
        assert_eq!(
            inferred.relationship(Asn(5), Asn(6)),
            Some(Relationship::Sibling)
        );
    }

    #[test]
    fn degree_infer_builds_top_clique() {
        let corpus = paths(&[
            "10 1 2 20",
            "20 2 1 10",
            "11 1 2 21",
            "21 2 1 11",
            "10 1 11",
            "11 1 10",
            "20 2 21",
            "21 2 20",
            "10 1 2 21",
            "11 1 2 20",
            "21 2 1 10",
            "20 2 1 11",
        ]);
        let inferred = degree_infer(&corpus, InferParams::default());
        assert_eq!(
            inferred.relationship(Asn(1), Asn(2)),
            Some(Relationship::Peer)
        );
        // Stubs hang off the cores as customers.
        assert_eq!(
            inferred.relationship(Asn(1), Asn(10)),
            Some(Relationship::Customer)
        );
    }

    #[test]
    fn consensus_runs_end_to_end() {
        let corpus = star_paths();
        let inferred = consensus_infer(&corpus, &[], InferParams::default());
        assert_eq!(
            inferred.relationship(Asn(1), Asn(10)),
            Some(Relationship::Customer)
        );
    }

    #[test]
    fn accuracy_comparison_counts() {
        let mut truth = AsGraph::new();
        truth.add_provider_customer(Asn(1), Asn(2)).unwrap();
        truth.add_peering(Asn(2), Asn(3)).unwrap();
        truth.add_provider_customer(Asn(1), Asn(4)).unwrap();

        let mut inferred = AsGraph::new();
        inferred.add_provider_customer(Asn(1), Asn(2)).unwrap(); // agree
        inferred.add_provider_customer(Asn(2), Asn(3)).unwrap(); // conflict
        inferred.add_peering(Asn(9), Asn(8)).unwrap(); // spurious
                                                       // 1-4 missing

        let acc = InferenceAccuracy::compare(&truth, &inferred);
        assert_eq!(acc.agreeing, 1);
        assert_eq!(acc.conflicting, 1);
        assert_eq!(acc.missing, 1);
        assert_eq!(acc.spurious, 1);
        assert!((acc.accuracy() - 0.5).abs() < 1e-9);
        assert!((acc.coverage() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_vacuous_cases() {
        let empty = AsGraph::new();
        let acc = InferenceAccuracy::compare(&empty, &empty);
        assert_eq!(acc.accuracy(), 1.0);
        assert_eq!(acc.coverage(), 1.0);
    }
}
