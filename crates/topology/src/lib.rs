//! AS-level topology substrate for the ASPP interception study.
//!
//! The paper runs its simulations on an AS topology inferred from public BGP
//! data (RouteViews/RIPE) whose business relationships are derived with Gao's
//! algorithm cross-checked against CAIDA's (Section IV-A). This crate builds
//! that substrate from scratch:
//!
//! * [`AsGraph`] — an AS-level graph whose edges carry
//!   [`Relationship`](aspp_types::Relationship) annotations;
//! * [`gen`] — a synthetic hierarchical Internet generator (tier-1 clique,
//!   multi-homed transit tiers, stubs, richly-peered content ASes) that plays
//!   the role of the real measured topology, with ground-truth relationships;
//! * [`tier`] — tier classification and customer-cone analytics;
//! * [`infer`] — Gao's relationship-inference algorithm, a degree-based
//!   (CAIDA-style) inference, and the paper's consensus pipeline combining
//!   the two.
//!
//! # Example
//!
//! ```
//! use aspp_topology::{gen::InternetConfig, tier::TierMap};
//!
//! let graph = InternetConfig::small().seed(7).build();
//! let tiers = TierMap::classify(&graph);
//! assert!(tiers.tier1().count() >= 4);
//! assert!(graph.len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
mod graph;
pub mod infer;
pub mod io;
pub mod metrics;
pub mod tier;

pub use graph::{AsGraph, CsrEntry, CsrIndex, GraphError, NeighborIter};
