//! Topology analytics: degree statistics and relationship mix.

use std::collections::BTreeMap;

use aspp_types::Relationship;

use crate::AsGraph;

/// Summary statistics over an AS graph.
///
/// # Example
///
/// ```
/// use aspp_topology::{gen::InternetConfig, metrics::GraphStats};
///
/// let g = InternetConfig::small().seed(1).build();
/// let stats = GraphStats::compute(&g);
/// assert_eq!(stats.as_count, g.len());
/// assert!(stats.avg_degree > 1.0);
/// assert!(stats.peering_links + stats.provider_links + stats.sibling_links == stats.link_count);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of ASes.
    pub as_count: usize,
    /// Number of links.
    pub link_count: usize,
    /// Provider-customer links.
    pub provider_links: usize,
    /// Peer-peer links.
    pub peering_links: usize,
    /// Sibling links.
    pub sibling_links: usize,
    /// Mean degree.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    #[must_use]
    pub fn compute(graph: &AsGraph) -> Self {
        let mut provider_links = 0;
        let mut peering_links = 0;
        let mut sibling_links = 0;
        for (_, _, rel) in graph.links() {
            match rel {
                Relationship::Customer | Relationship::Provider => provider_links += 1,
                Relationship::Peer => peering_links += 1,
                Relationship::Sibling => sibling_links += 1,
            }
        }
        let link_count = graph.link_count();
        let as_count = graph.len();
        let max_degree = graph.asns().map(|a| graph.degree(a)).max().unwrap_or(0);
        GraphStats {
            as_count,
            link_count,
            provider_links,
            peering_links,
            sibling_links,
            avg_degree: if as_count == 0 {
                0.0
            } else {
                2.0 * link_count as f64 / as_count as f64
            },
            max_degree,
        }
    }
}

/// Histogram of node degrees: `degree -> number of ASes with that degree`.
///
/// ```
/// use aspp_topology::{AsGraph, metrics::degree_distribution};
/// use aspp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = AsGraph::new();
/// g.add_peering(Asn(1), Asn(2))?;
/// g.add_provider_customer(Asn(1), Asn(3))?;
/// let hist = degree_distribution(&g);
/// assert_eq!(hist[&1], 2); // ASes 2 and 3
/// assert_eq!(hist[&2], 1); // AS 1
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn degree_distribution(graph: &AsGraph) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for asn in graph.asns() {
        *hist.entry(graph.degree(asn)).or_insert(0) += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::InternetConfig;
    use aspp_types::Asn;

    #[test]
    fn stats_on_empty_graph() {
        let stats = GraphStats::compute(&AsGraph::new());
        assert_eq!(stats.as_count, 0);
        assert_eq!(stats.avg_degree, 0.0);
        assert_eq!(stats.max_degree, 0);
    }

    #[test]
    fn stats_count_link_kinds() {
        let mut g = AsGraph::new();
        g.add_peering(Asn(1), Asn(2)).unwrap();
        g.add_provider_customer(Asn(1), Asn(3)).unwrap();
        g.add_sibling(Asn(3), Asn(4)).unwrap();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.provider_links, 1);
        assert_eq!(stats.peering_links, 1);
        assert_eq!(stats.sibling_links, 1);
        assert_eq!(stats.link_count, 3);
    }

    #[test]
    fn degree_distribution_sums_to_as_count() {
        let g = InternetConfig::small().seed(2).build();
        let hist = degree_distribution(&g);
        let total: usize = hist.values().sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn generated_internet_has_heavy_tail() {
        let g = InternetConfig::medium().seed(3).build();
        let stats = GraphStats::compute(&g);
        // Tier-1s concentrate degree: the max degree should far exceed the mean.
        assert!(stats.max_degree as f64 > stats.avg_degree * 5.0);
    }
}
