//! Reading and writing AS topologies in the CAIDA serial-2 relationship
//! format.
//!
//! The paper's topology comes from relationship inference over RouteViews
//! data, cross-checked against CAIDA's published graphs. CAIDA distributes
//! those as line-oriented text:
//!
//! ```text
//! # comments start with '#'
//! <provider-as>|<customer-as>|-1
//! <peer-as>|<peer-as>|0
//! <sibling-as>|<sibling-as>|2      (extension used by some datasets)
//! ```
//!
//! With this module a user can run every experiment in this workspace on a
//! real CAIDA `as-rel` snapshot instead of the synthetic generator.

use std::fmt;

use aspp_types::{Asn, Relationship};

use crate::{AsGraph, GraphError};

/// Error from [`from_caida`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTopologyError {
    line_no: usize,
    message: String,
}

impl ParseTopologyError {
    fn new(line_no: usize, message: impl Into<String>) -> Self {
        ParseTopologyError {
            line_no,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending record.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line_no
    }
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology parse error at line {}: {}",
            self.line_no, self.message
        )
    }
}

impl std::error::Error for ParseTopologyError {}

/// Parses a CAIDA serial-2 style relationship file.
///
/// Duplicate links are tolerated when they agree and rejected when they
/// conflict; self-loops are always rejected.
///
/// # Errors
///
/// Returns [`ParseTopologyError`] with the line number for malformed
/// records, unknown relationship codes, self-loops, and conflicting
/// duplicates.
///
/// # Example
///
/// ```
/// use aspp_topology::io::from_caida;
/// use aspp_types::{Asn, Relationship};
///
/// let text = "# as-rel\n3356|32934|-1\n7018|3356|0\n";
/// let graph = from_caida(text).unwrap();
/// assert_eq!(graph.relationship(Asn(3356), Asn(32934)), Some(Relationship::Customer));
/// assert_eq!(graph.relationship(Asn(7018), Asn(3356)), Some(Relationship::Peer));
/// ```
pub fn from_caida(text: &str) -> Result<AsGraph, ParseTopologyError> {
    let mut graph = AsGraph::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() < 3 {
            return Err(ParseTopologyError::new(line_no, "need as1|as2|rel"));
        }
        let a: Asn = fields[0]
            .parse()
            .map_err(|e| ParseTopologyError::new(line_no, format!("{e}")))?;
        let b: Asn = fields[1]
            .parse()
            .map_err(|e| ParseTopologyError::new(line_no, format!("{e}")))?;
        let rel = match fields[2] {
            "-1" => Relationship::Customer, // a is provider of b
            "0" => Relationship::Peer,
            "2" => Relationship::Sibling,
            other => {
                return Err(ParseTopologyError::new(
                    line_no,
                    format!("unknown relationship code {other:?}"),
                ))
            }
        };
        match graph.add_link(a, b, rel) {
            Ok(()) => {}
            Err(GraphError::DuplicateLink(..)) => {
                // Tolerate exact duplicates; reject conflicts.
                if graph.relationship(a, b) != Some(rel) {
                    return Err(ParseTopologyError::new(
                        line_no,
                        format!("conflicting duplicate link {a}|{b}"),
                    ));
                }
            }
            Err(GraphError::SelfLoop(asn)) => {
                return Err(ParseTopologyError::new(
                    line_no,
                    format!("self-loop on AS{asn}"),
                ))
            }
        }
    }
    graph.sort_neighbors();
    Ok(graph)
}

/// Serializes a graph to the CAIDA serial-2 format (provider first on `-1`
/// lines), with links in deterministic order.
///
/// # Example
///
/// ```
/// use aspp_topology::io::{from_caida, to_caida};
/// use aspp_topology::gen::InternetConfig;
///
/// let graph = InternetConfig::small().seed(1).build();
/// let text = to_caida(&graph);
/// let reparsed = from_caida(&text).unwrap();
/// assert_eq!(reparsed.len(), graph.len());
/// assert_eq!(reparsed.link_count(), graph.link_count());
/// ```
#[must_use]
pub fn to_caida(graph: &AsGraph) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(graph.link_count());
    for (a, b, rel) in graph.links() {
        let line = match rel {
            Relationship::Customer => format!("{a}|{b}|-1"),
            Relationship::Provider => format!("{b}|{a}|-1"),
            Relationship::Peer => {
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                format!("{x}|{y}|0")
            }
            Relationship::Sibling => {
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                format!("{x}|{y}|2")
            }
        };
        lines.push(line);
    }
    lines.sort();
    let mut out = String::from("# aspp topology, CAIDA serial-2 format\n");
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::InternetConfig;
    use proptest::prelude::*;

    #[test]
    fn round_trip_preserves_every_link() {
        let graph = InternetConfig::small().seed(5).build();
        let reparsed = from_caida(&to_caida(&graph)).unwrap();
        assert_eq!(reparsed.len(), graph.len());
        for (a, b, rel) in graph.links() {
            assert_eq!(reparsed.relationship(a, b), Some(rel), "{a}|{b}");
        }
    }

    #[test]
    fn parses_all_relationship_codes() {
        let g = from_caida("1|2|-1\n2|3|0\n3|4|2\n").unwrap();
        assert_eq!(g.relationship(Asn(1), Asn(2)), Some(Relationship::Customer));
        assert_eq!(g.relationship(Asn(2), Asn(1)), Some(Relationship::Provider));
        assert_eq!(g.relationship(Asn(2), Asn(3)), Some(Relationship::Peer));
        assert_eq!(g.relationship(Asn(3), Asn(4)), Some(Relationship::Sibling));
    }

    #[test]
    fn tolerates_agreeing_duplicates() {
        let g = from_caida("1|2|-1\n1|2|-1\n").unwrap();
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn rejects_conflicting_duplicates() {
        let err = from_caida("1|2|-1\n1|2|0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("conflicting"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, line) in [
            ("1|2", 1),
            ("x|2|-1", 1),
            ("1|y|-1", 1),
            ("1|2|7", 1),
            ("1|1|0", 1),
            ("# ok\n\n1|2|-1\nbroken", 4),
        ] {
            let err = from_caida(text).unwrap_err();
            assert_eq!(err.line(), line, "for {text:?}");
        }
    }

    #[test]
    fn empty_and_comment_only_files_parse() {
        assert!(from_caida("").unwrap().is_empty());
        assert!(from_caida("# nothing here\n\n").unwrap().is_empty());
    }

    proptest! {
        #[test]
        fn prop_round_trip(seed in any::<u64>()) {
            let graph = InternetConfig::small()
                .tier2_count(6).tier3_count(6).stub_count(10).seed(seed).build();
            let reparsed = from_caida(&to_caida(&graph)).unwrap();
            prop_assert_eq!(reparsed.link_count(), graph.link_count());
            for (a, b, rel) in graph.links() {
                prop_assert_eq!(reparsed.relationship(a, b), Some(rel));
            }
        }
    }
}
