//! Reading and writing AS topologies in the CAIDA serial-2 relationship
//! format.
//!
//! The paper's topology comes from relationship inference over RouteViews
//! data, cross-checked against CAIDA's published graphs. CAIDA distributes
//! those as line-oriented text:
//!
//! ```text
//! # comments start with '#'
//! <provider-as>|<customer-as>|-1
//! <peer-as>|<peer-as>|0
//! <sibling-as>|<sibling-as>|2      (extension used by some datasets)
//! ```
//!
//! With this module a user can run every experiment in this workspace on a
//! real CAIDA `as-rel` snapshot instead of the synthetic generator.

use std::fmt;

use aspp_types::{Asn, AsppError, IngestReport, Relationship};

use crate::{AsGraph, GraphError};

/// Error from [`from_caida`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTopologyError {
    line_no: usize,
    message: String,
}

impl ParseTopologyError {
    fn new(line_no: usize, message: impl Into<String>) -> Self {
        ParseTopologyError {
            line_no,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending record.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line_no
    }
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology parse error at line {}: {}",
            self.line_no, self.message
        )
    }
}

impl std::error::Error for ParseTopologyError {}

impl From<ParseTopologyError> for AsppError {
    fn from(e: ParseTopologyError) -> Self {
        AsppError::at_line("topology", e.line_no, e.message)
    }
}

/// Parses a CAIDA serial-2 style relationship file.
///
/// Duplicate links are tolerated when they agree and rejected when they
/// conflict; self-loops are always rejected.
///
/// # Errors
///
/// Returns [`ParseTopologyError`] with the line number for malformed
/// records, unknown relationship codes, self-loops, and conflicting
/// duplicates.
///
/// # Example
///
/// ```
/// use aspp_topology::io::from_caida;
/// use aspp_types::{Asn, Relationship};
///
/// let text = "# as-rel\n3356|32934|-1\n7018|3356|0\n";
/// let graph = from_caida(text).unwrap();
/// assert_eq!(graph.relationship(Asn(3356), Asn(32934)), Some(Relationship::Customer));
/// assert_eq!(graph.relationship(Asn(7018), Asn(3356)), Some(Relationship::Peer));
/// ```
pub fn from_caida(text: &str) -> Result<AsGraph, ParseTopologyError> {
    parse_caida(text, true).map(|(graph, _)| graph)
}

/// Strict-mode [`from_caida`] with the workspace-uniform error type: rejects
/// malformed records, unknown relationship codes, self-loops, and
/// conflicting duplicate edges with a line-numbered [`AsppError`].
///
/// # Errors
///
/// Returns a line-numbered [`AsppError`] for the first invalid record.
///
/// # Example
///
/// ```
/// use aspp_topology::io::from_caida_strict;
///
/// let err = from_caida_strict("1|2|-1\n1|2|0\n").unwrap_err();
/// assert_eq!(err.line(), Some(2));
/// assert!(err.to_string().contains("conflicting"));
/// ```
pub fn from_caida_strict(text: &str) -> Result<AsGraph, AsppError> {
    from_caida(text).map_err(AsppError::from)
}

/// Lenient-mode [`from_caida`]: never fails, instead *accounting* for every
/// record in the returned [`IngestReport`] — malformed lines are skipped
/// with a line-numbered note, and conflicting duplicate edges are resolved
/// with deterministic first-wins precedence (the relationship seen first
/// stays) and counted as conflicts. `report.total()` always equals the
/// number of non-comment record lines: nothing is silently dropped.
///
/// # Example
///
/// ```
/// use aspp_topology::io::from_caida_lenient;
/// use aspp_types::{Asn, Relationship};
///
/// let (graph, report) = from_caida_lenient("1|2|-1\n1|2|0\ngarbage\n");
/// // First-wins: the provider-customer record seen first is kept.
/// assert_eq!(graph.relationship(Asn(1), Asn(2)), Some(Relationship::Customer));
/// assert_eq!((report.accepted, report.conflicts, report.skipped), (1, 1, 1));
/// ```
#[must_use]
pub fn from_caida_lenient(text: &str) -> (AsGraph, IngestReport) {
    parse_caida(text, false).expect("lenient parse never fails")
}

fn parse_caida(text: &str, strict: bool) -> Result<(AsGraph, IngestReport), ParseTopologyError> {
    let mut graph = AsGraph::new();
    let mut report = IngestReport::default();
    // In lenient mode a malformed record is skipped (with a note) where
    // strict mode would return; both go through this macro.
    macro_rules! reject {
        ($line_no:expr, $msg:expr) => {{
            if strict {
                return Err(ParseTopologyError::new($line_no, $msg));
            }
            report.skip($line_no, $msg);
            continue;
        }};
    }
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() < 3 {
            reject!(line_no, "need as1|as2|rel");
        }
        let a: Asn = match fields[0].parse() {
            Ok(asn) => asn,
            Err(e) => reject!(line_no, format!("{e}")),
        };
        let b: Asn = match fields[1].parse() {
            Ok(asn) => asn,
            Err(e) => reject!(line_no, format!("{e}")),
        };
        let rel = match fields[2] {
            "-1" => Relationship::Customer, // a is provider of b
            "0" => Relationship::Peer,
            "2" => Relationship::Sibling,
            other => {
                reject!(line_no, format!("unknown relationship code {other:?}"));
            }
        };
        match graph.add_link(a, b, rel) {
            Ok(()) => report.accept(),
            Err(GraphError::DuplicateLink(..)) => {
                // Tolerate exact duplicates; conflicts are rejected in
                // strict mode and resolved first-wins in lenient mode.
                if graph.relationship(a, b) == Some(rel) {
                    report.accept();
                } else if strict {
                    return Err(ParseTopologyError::new(
                        line_no,
                        format!("conflicting duplicate link {a}|{b}"),
                    ));
                } else {
                    report.conflict(
                        line_no,
                        format!("conflicting duplicate link {a}|{b}: kept first relationship"),
                    );
                }
            }
            Err(GraphError::SelfLoop(asn)) => {
                reject!(line_no, format!("self-loop on AS{asn}"));
            }
        }
    }
    graph.sort_neighbors();
    Ok((graph, report))
}

/// Serializes a graph to the CAIDA serial-2 format (provider first on `-1`
/// lines), with links in deterministic order.
///
/// # Example
///
/// ```
/// use aspp_topology::io::{from_caida, to_caida};
/// use aspp_topology::gen::InternetConfig;
///
/// let graph = InternetConfig::small().seed(1).build();
/// let text = to_caida(&graph);
/// let reparsed = from_caida(&text).unwrap();
/// assert_eq!(reparsed.len(), graph.len());
/// assert_eq!(reparsed.link_count(), graph.link_count());
/// ```
#[must_use]
pub fn to_caida(graph: &AsGraph) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(graph.link_count());
    for (a, b, rel) in graph.links() {
        let line = match rel {
            Relationship::Customer => format!("{a}|{b}|-1"),
            Relationship::Provider => format!("{b}|{a}|-1"),
            Relationship::Peer => {
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                format!("{x}|{y}|0")
            }
            Relationship::Sibling => {
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                format!("{x}|{y}|2")
            }
        };
        lines.push(line);
    }
    lines.sort();
    let mut out = String::from("# aspp topology, CAIDA serial-2 format\n");
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::InternetConfig;
    use proptest::prelude::*;

    #[test]
    fn round_trip_preserves_every_link() {
        let graph = InternetConfig::small().seed(5).build();
        let reparsed = from_caida(&to_caida(&graph)).unwrap();
        assert_eq!(reparsed.len(), graph.len());
        for (a, b, rel) in graph.links() {
            assert_eq!(reparsed.relationship(a, b), Some(rel), "{a}|{b}");
        }
    }

    #[test]
    fn parses_all_relationship_codes() {
        let g = from_caida("1|2|-1\n2|3|0\n3|4|2\n").unwrap();
        assert_eq!(g.relationship(Asn(1), Asn(2)), Some(Relationship::Customer));
        assert_eq!(g.relationship(Asn(2), Asn(1)), Some(Relationship::Provider));
        assert_eq!(g.relationship(Asn(2), Asn(3)), Some(Relationship::Peer));
        assert_eq!(g.relationship(Asn(3), Asn(4)), Some(Relationship::Sibling));
    }

    #[test]
    fn tolerates_agreeing_duplicates() {
        let g = from_caida("1|2|-1\n1|2|-1\n").unwrap();
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn rejects_conflicting_duplicates() {
        let err = from_caida("1|2|-1\n1|2|0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("conflicting"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, line) in [
            ("1|2", 1),
            ("x|2|-1", 1),
            ("1|y|-1", 1),
            ("1|2|7", 1),
            ("1|1|0", 1),
            ("# ok\n\n1|2|-1\nbroken", 4),
        ] {
            let err = from_caida(text).unwrap_err();
            assert_eq!(err.line(), line, "for {text:?}");
        }
    }

    #[test]
    fn empty_and_comment_only_files_parse() {
        assert!(from_caida("").unwrap().is_empty());
        assert!(from_caida("# nothing here\n\n").unwrap().is_empty());
    }

    #[test]
    fn strict_variant_reports_uniform_line_numbered_errors() {
        let err = from_caida_strict("1|2|-1\n1|2|2\n").unwrap_err();
        assert_eq!(err.component(), "topology");
        assert_eq!(err.line(), Some(2));
        assert!(err.to_string().contains("conflicting duplicate link 1|2"));
        assert!(from_caida_strict("1|2|-1\n").is_ok());
    }

    #[test]
    fn lenient_resolves_conflicts_first_wins_and_counts_them() {
        // Three records for the same link: the first wins, the two
        // conflicting rewrites are counted, and nothing is dropped silently.
        let (g, report) = from_caida_lenient("1|2|0\n1|2|-1\n1|2|2\n2|3|-1\n");
        assert_eq!(g.relationship(Asn(1), Asn(2)), Some(Relationship::Peer));
        assert_eq!(g.link_count(), 2);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.conflicts, 2);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.total(), 4);
        assert!(report.notes.iter().any(|n| n.starts_with("line 2:")));
    }

    #[test]
    fn lenient_skips_malformed_records_with_notes() {
        let text = "# header\n1|2|-1\nnot-a-record\n3|3|0\n4|5|9\nx|6|0\n7|8|0\n";
        let (g, report) = from_caida_lenient(text);
        assert_eq!(g.link_count(), 2);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.skipped, 4);
        assert!(!report.is_clean());
        // Every non-comment record line is accounted for.
        assert_eq!(report.total(), 6);
        assert!(report.notes.iter().any(|n| n.contains("self-loop")));
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("unknown relationship code")));
    }

    #[test]
    fn lenient_agrees_with_strict_on_clean_input() {
        let graph = InternetConfig::small().seed(9).build();
        let text = to_caida(&graph);
        let strict = from_caida_strict(&text).unwrap();
        let (lenient, report) = from_caida_lenient(&text);
        assert!(report.is_clean());
        assert_eq!(report.accepted, graph.link_count());
        assert_eq!(strict.link_count(), lenient.link_count());
        for (a, b, rel) in strict.links() {
            assert_eq!(lenient.relationship(a, b), Some(rel));
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(seed in any::<u64>()) {
            let graph = InternetConfig::small()
                .tier2_count(6).tier3_count(6).stub_count(10).seed(seed).build();
            let reparsed = from_caida(&to_caida(&graph)).unwrap();
            prop_assert_eq!(reparsed.link_count(), graph.link_count());
            for (a, b, rel) in graph.links() {
                prop_assert_eq!(reparsed.relationship(a, b), Some(rel));
            }
        }
    }
}
