//! The annotated AS-level graph.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use aspp_types::{Asn, Relationship};

/// An AS-level topology: an undirected graph whose edges are annotated with
/// business relationships (customer-provider, peer-peer, sibling).
///
/// Nodes are addressed either by [`Asn`] (public API) or by dense `usize`
/// indices (hot paths in the routing engine). Indices are assigned in
/// insertion order and are stable for the life of the graph.
///
/// # Example
///
/// ```
/// use aspp_topology::AsGraph;
/// use aspp_types::{Asn, Relationship};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = AsGraph::new();
/// g.add_provider_customer(Asn(3356), Asn(32934))?; // Level3 provides Facebook
/// g.add_peering(Asn(3356), Asn(7018))?;            // Level3 peers with AT&T
///
/// assert_eq!(g.relationship(Asn(3356), Asn(32934)), Some(Relationship::Customer));
/// assert_eq!(g.relationship(Asn(32934), Asn(3356)), Some(Relationship::Provider));
/// assert_eq!(g.degree(Asn(3356)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct AsGraph {
    index: HashMap<Asn, usize>,
    nodes: Vec<Node>,
    /// Lazily-built CSR adjacency snapshot; reset by every mutation.
    csr: OnceLock<CsrIndex>,
    /// Bumped by every mutation; lets long-lived caches (e.g. the routing
    /// engine's clean-pass cache) detect that a graph changed under them.
    version: u64,
}

/// One packed CSR adjacency entry: the neighbor's dense node index in the
/// upper 30 bits and its [`Relationship`] (as seen from the owning node) in
/// the low 2. Packing both into a single `u32` halves the entry footprint
/// again versus `(u32, Relationship)` — at Internet scale (~1M directed
/// entries) the whole adjacency array stays within a few MB of contiguous,
/// branch-predictable memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(transparent)]
pub struct CsrEntry(u32);

impl CsrEntry {
    /// Discriminant-indexed decode table; `Relationship` has exactly four
    /// variants, so the low 2 bits round-trip losslessly.
    const REL: [Relationship; 4] = [
        Relationship::Customer,
        Relationship::Peer,
        Relationship::Provider,
        Relationship::Sibling,
    ];

    #[inline]
    fn pack(node: u32, rel: Relationship) -> Self {
        debug_assert!(node < (1 << 30), "node index must fit 30 bits");
        CsrEntry((node << 2) | rel as u32)
    }

    /// The neighbor's dense node index.
    #[inline]
    #[must_use]
    pub fn node(self) -> u32 {
        self.0 >> 2
    }

    /// The neighbor's relationship as seen from the owning node.
    #[inline]
    #[must_use]
    pub fn rel(self) -> Relationship {
        Self::REL[(self.0 & 3) as usize]
    }
}

/// A compressed-sparse-row snapshot of the adjacency lists: one contiguous
/// entry array plus per-node offsets. Route computation iterates millions of
/// neighbor lists per experiment; the CSR keeps them in one cache-friendly
/// allocation of packed [`CsrEntry`] words, plus a flat `Asn`-by-index table
/// so hot loops never touch the node structs (32-byte stride) or the
/// `Asn → index` hash map.
///
/// Obtained from [`AsGraph::csr`]; rebuilt lazily after any mutation.
#[derive(Clone, Debug, Default)]
pub struct CsrIndex {
    /// `offsets[i]..offsets[i + 1]` brackets node `i`'s entries.
    offsets: Vec<u32>,
    /// Packed `(neighbor index, relationship)` entries.
    entries: Vec<CsrEntry>,
    /// ASN of every dense index — the boundary-free reverse mapping.
    asn_of: Vec<Asn>,
}

impl CsrIndex {
    /// Neighbor entries of the node at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, idx: usize) -> &[CsrEntry] {
        &self.entries[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// The ASN at dense index `idx`, from the snapshot's flat table (a
    /// 4-byte-stride array read, no hashing, no node-struct traffic).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    #[must_use]
    pub fn asn_at(&self, idx: usize) -> Asn {
        self.asn_of[idx]
    }

    /// The whole dense-index → ASN table.
    #[inline]
    #[must_use]
    pub fn asn_table(&self) -> &[Asn] {
        &self.asn_of
    }

    /// Number of nodes covered by this snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Returns `true` if the snapshot covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Clone, Debug)]
struct Node {
    asn: Asn,
    /// `(neighbor index, relationship of that neighbor as seen from here)`.
    neighbors: Vec<(usize, Relationship)>,
}

/// Errors produced while mutating an [`AsGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// Attempted to link an AS to itself.
    SelfLoop(Asn),
    /// The two ASes are already linked (possibly with another relationship).
    DuplicateLink(Asn, Asn),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(asn) => write!(f, "self-loop on AS{asn} rejected"),
            GraphError::DuplicateLink(a, b) => {
                write!(f, "link between AS{a} and AS{b} already exists")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl AsGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        AsGraph::default()
    }

    /// Creates an empty graph with room for `n` ASes.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        AsGraph {
            index: HashMap::with_capacity(n),
            nodes: Vec::with_capacity(n),
            csr: OnceLock::new(),
            version: 0,
        }
    }

    /// Drops derived state after a mutation.
    fn invalidate_caches(&mut self) {
        self.csr = OnceLock::new();
        self.version = self.version.wrapping_add(1);
    }

    /// Monotonic mutation counter: two observations of the same graph value
    /// with equal versions (and equal [`len`](Self::len)) saw identical
    /// topology. Used by caches layered on top of the graph.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The CSR adjacency snapshot, built on first use after any mutation.
    ///
    /// This is the routing hot path's view of the topology; the per-node
    /// [`neighbors_at`](Self::neighbors_at) slices remain available for
    /// incremental use.
    #[must_use]
    pub fn csr(&self) -> &CsrIndex {
        self.csr.get_or_init(|| {
            let total: usize = self.nodes.iter().map(|n| n.neighbors.len()).sum();
            let mut offsets = Vec::with_capacity(self.nodes.len() + 1);
            let mut entries = Vec::with_capacity(total);
            let mut asn_of = Vec::with_capacity(self.nodes.len());
            offsets.push(0u32);
            for node in &self.nodes {
                asn_of.push(node.asn);
                for &(idx, rel) in &node.neighbors {
                    entries.push(CsrEntry::pack(
                        u32::try_from(idx).expect("node count fits u32"),
                        rel,
                    ));
                }
                offsets.push(u32::try_from(entries.len()).expect("entry count fits u32"));
            }
            CsrIndex {
                offsets,
                entries,
                asn_of,
            }
        })
    }

    /// Number of ASes in the graph.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no ASes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.nodes.iter().map(|n| n.neighbors.len()).sum::<usize>() / 2
    }

    /// A content fingerprint of the topology: an FNV-1a hash over the sorted
    /// `(asn, asn, relationship)` link list. Two graphs with the same ASes
    /// and links hash identically regardless of insertion order; run
    /// manifests record it so results can be matched to the exact topology
    /// that produced them.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut links: Vec<(u32, u32, u8)> = self
            .links()
            .map(|(a, b, rel)| {
                // Key each undirected link from its lower-ASN endpoint;
                // flipping endpoints flips the relationship's direction.
                if a.value() <= b.value() {
                    (a.value(), b.value(), rel as u8)
                } else {
                    (b.value(), a.value(), rel.reverse() as u8)
                }
            })
            .collect();
        links.sort_unstable();
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.nodes.len() as u64);
        for (a, b, rel) in links {
            mix(u64::from(a));
            mix(u64::from(b));
            mix(u64::from(rel));
        }
        h
    }

    /// Inserts `asn` as an isolated node if absent; returns its index.
    pub fn add_as(&mut self, asn: Asn) -> usize {
        if let Some(&idx) = self.index.get(&asn) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            asn,
            neighbors: Vec::new(),
        });
        self.index.insert(asn, idx);
        self.invalidate_caches();
        idx
    }

    /// Returns `true` if `asn` is present.
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.index.contains_key(&asn)
    }

    /// Dense index of `asn`, if present.
    #[must_use]
    pub fn index_of(&self, asn: Asn) -> Option<usize> {
        self.index.get(&asn).copied()
    }

    /// The ASN stored at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[must_use]
    pub fn asn_at(&self, idx: usize) -> Asn {
        self.nodes[idx].asn
    }

    /// Iterates over all ASNs in insertion order.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.nodes.iter().map(|n| n.asn)
    }

    /// Adds a link where `b` is related to `a` as `rel_of_b`.
    ///
    /// For example `add_link(a, b, Relationship::Customer)` records that `b`
    /// is `a`'s customer (equivalently, `a` is `b`'s provider). Both ASes are
    /// inserted if absent.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] if `a == b`;
    /// [`GraphError::DuplicateLink`] if the pair is already linked.
    pub fn add_link(&mut self, a: Asn, b: Asn, rel_of_b: Relationship) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let ia = self.add_as(a);
        let ib = self.add_as(b);
        if self.nodes[ia].neighbors.iter().any(|&(n, _)| n == ib) {
            return Err(GraphError::DuplicateLink(a, b));
        }
        self.nodes[ia].neighbors.push((ib, rel_of_b));
        self.nodes[ib].neighbors.push((ia, rel_of_b.reverse()));
        self.invalidate_caches();
        Ok(())
    }

    /// [`add_link`](Self::add_link) without the O(degree) duplicate scan,
    /// for bulk generators that prove pair uniqueness structurally (e.g.
    /// disjoint ASN blocks per construction phase). A duplicate inserted
    /// here corrupts the adjacency lists, hence crate-private.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop in debug builds.
    pub(crate) fn add_link_unchecked(&mut self, a: Asn, b: Asn, rel_of_b: Relationship) {
        debug_assert_ne!(a, b, "self-loop");
        let ia = self.add_as(a);
        let ib = self.add_as(b);
        debug_assert!(
            !self.nodes[ia].neighbors.iter().any(|&(n, _)| n == ib),
            "duplicate link AS{a}-AS{b}"
        );
        self.nodes[ia].neighbors.push((ib, rel_of_b));
        self.nodes[ib].neighbors.push((ia, rel_of_b.reverse()));
        self.invalidate_caches();
    }

    /// Records that `provider` sells transit to `customer`.
    ///
    /// # Errors
    ///
    /// Same as [`add_link`](Self::add_link).
    pub fn add_provider_customer(
        &mut self,
        provider: Asn,
        customer: Asn,
    ) -> Result<(), GraphError> {
        self.add_link(provider, customer, Relationship::Customer)
    }

    /// Records a settlement-free peering between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same as [`add_link`](Self::add_link).
    pub fn add_peering(&mut self, a: Asn, b: Asn) -> Result<(), GraphError> {
        self.add_link(a, b, Relationship::Peer)
    }

    /// Records a sibling link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same as [`add_link`](Self::add_link).
    pub fn add_sibling(&mut self, a: Asn, b: Asn) -> Result<(), GraphError> {
        self.add_link(a, b, Relationship::Sibling)
    }

    /// Removes the link between `a` and `b`, returning the relationship of
    /// `b` as seen from `a` if the link existed. Nodes stay in the graph, so
    /// dense indices remain valid — this is the primitive behind link-failure
    /// churn simulation.
    pub fn remove_link(&mut self, a: Asn, b: Asn) -> Option<Relationship> {
        let ia = self.index_of(a)?;
        let ib = self.index_of(b)?;
        let pos_a = self.nodes[ia]
            .neighbors
            .iter()
            .position(|&(n, _)| n == ib)?;
        let (_, rel) = self.nodes[ia].neighbors.remove(pos_a);
        let pos_b = self.nodes[ib]
            .neighbors
            .iter()
            .position(|&(n, _)| n == ia)
            .expect("links are stored symmetrically");
        self.nodes[ib].neighbors.remove(pos_b);
        self.invalidate_caches();
        Some(rel)
    }

    /// The relationship of `b` as seen from `a`, or `None` if not adjacent
    /// (or either AS is absent).
    #[must_use]
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        let ia = self.index_of(a)?;
        let ib = self.index_of(b)?;
        self.nodes[ia]
            .neighbors
            .iter()
            .find(|&&(n, _)| n == ib)
            .map(|&(_, rel)| rel)
    }

    /// Degree (number of links) of `asn`; zero if absent.
    #[must_use]
    pub fn degree(&self, asn: Asn) -> usize {
        self.index_of(asn)
            .map_or(0, |i| self.nodes[i].neighbors.len())
    }

    /// Degree by dense index.
    #[must_use]
    pub fn degree_at(&self, idx: usize) -> usize {
        self.nodes[idx].neighbors.len()
    }

    /// Iterates over `asn`'s neighbors with their relationships.
    ///
    /// Returns an empty iterator if `asn` is absent.
    #[must_use]
    pub fn neighbors(&self, asn: Asn) -> NeighborIter<'_> {
        let slice = self
            .index_of(asn)
            .map_or(&[][..], |i| self.nodes[i].neighbors.as_slice());
        NeighborIter {
            graph: self,
            inner: slice.iter(),
        }
    }

    /// Raw neighbor list by dense index: `(neighbor index, relationship)`.
    #[must_use]
    pub fn neighbors_at(&self, idx: usize) -> &[(usize, Relationship)] {
        &self.nodes[idx].neighbors
    }

    /// Iterates over the ASNs of `asn`'s neighbors with relationship `rel`.
    pub fn neighbors_with(&self, asn: Asn, rel: Relationship) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors(asn)
            .filter(move |&(_, r)| r == rel)
            .map(|(n, _)| n)
    }

    /// `asn`'s customers.
    pub fn customers(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors_with(asn, Relationship::Customer)
    }

    /// `asn`'s peers.
    pub fn peers(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors_with(asn, Relationship::Peer)
    }

    /// `asn`'s providers.
    pub fn providers(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors_with(asn, Relationship::Provider)
    }

    /// Iterates over every link once as `(a, b, relationship_of_b_from_a)`,
    /// with `index_of(a) < index_of(b)`.
    pub fn links(&self) -> impl Iterator<Item = (Asn, Asn, Relationship)> + '_ {
        self.nodes.iter().enumerate().flat_map(move |(ia, node)| {
            node.neighbors
                .iter()
                .filter(move |&&(ib, _)| ia < ib)
                .map(move |&(ib, rel)| (node.asn, self.nodes[ib].asn, rel))
        })
    }

    /// Sorts every adjacency list by neighbor ASN, making iteration order
    /// independent of insertion order. Engines call this once after
    /// construction for deterministic behaviour.
    pub fn sort_neighbors(&mut self) {
        // Collect ASNs first to appease the borrow checker.
        let asn_of: Vec<Asn> = self.nodes.iter().map(|n| n.asn).collect();
        for node in &mut self.nodes {
            node.neighbors.sort_by_key(|&(idx, _)| asn_of[idx]);
        }
        self.invalidate_caches();
    }

    /// Returns the ASes sorted by descending degree (ties by ascending ASN) —
    /// the ranking the paper uses to pick detection monitors (Section VI-C).
    #[must_use]
    pub fn asns_by_degree(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.asns().collect();
        v.sort_by(|&a, &b| self.degree(b).cmp(&self.degree(a)).then_with(|| a.cmp(&b)));
        v
    }
}

/// Iterator over a node's neighbors as `(Asn, Relationship)` pairs.
///
/// Produced by [`AsGraph::neighbors`].
#[derive(Clone, Debug)]
pub struct NeighborIter<'a> {
    graph: &'a AsGraph,
    inner: core::slice::Iter<'a, (usize, Relationship)>,
}

impl Iterator for NeighborIter<'_> {
    type Item = (Asn, Relationship);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner
            .next()
            .map(|&(idx, rel)| (self.graph.nodes[idx].asn, rel))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_provider_customer(Asn(1), Asn(2)).unwrap();
        g.add_provider_customer(Asn(1), Asn(3)).unwrap();
        g.add_peering(Asn(2), Asn(3)).unwrap();
        g
    }

    #[test]
    fn empty_graph() {
        let g = AsGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.degree(Asn(1)), 0);
        assert_eq!(g.neighbors(Asn(1)).count(), 0);
        assert_eq!(g.relationship(Asn(1), Asn(2)), None);
    }

    #[test]
    fn link_relationships_are_symmetric() {
        let g = triangle();
        assert_eq!(g.relationship(Asn(1), Asn(2)), Some(Relationship::Customer));
        assert_eq!(g.relationship(Asn(2), Asn(1)), Some(Relationship::Provider));
        assert_eq!(g.relationship(Asn(2), Asn(3)), Some(Relationship::Peer));
        assert_eq!(g.relationship(Asn(3), Asn(2)), Some(Relationship::Peer));
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = triangle();
        assert_eq!(
            g.add_peering(Asn(5), Asn(5)).unwrap_err(),
            GraphError::SelfLoop(Asn(5))
        );
        assert_eq!(
            g.add_provider_customer(Asn(2), Asn(1)).unwrap_err(),
            GraphError::DuplicateLink(Asn(2), Asn(1))
        );
        // Error display is meaningful.
        assert!(GraphError::SelfLoop(Asn(5)).to_string().contains("AS5"));
    }

    #[test]
    fn degree_and_counts() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.link_count(), 3);
        assert_eq!(g.degree(Asn(1)), 2);
        assert_eq!(g.degree(Asn(2)), 2);
    }

    #[test]
    fn relationship_filtered_iterators() {
        let g = triangle();
        let customers: Vec<Asn> = g.customers(Asn(1)).collect();
        assert_eq!(customers, vec![Asn(2), Asn(3)]);
        let providers: Vec<Asn> = g.providers(Asn(3)).collect();
        assert_eq!(providers, vec![Asn(1)]);
        let peers: Vec<Asn> = g.peers(Asn(2)).collect();
        assert_eq!(peers, vec![Asn(3)]);
    }

    #[test]
    fn csr_matches_adjacency_lists() {
        let g = triangle();
        let csr = g.csr();
        assert_eq!(csr.len(), g.len());
        assert!(!csr.is_empty());
        for idx in 0..g.len() {
            let expected: Vec<(u32, Relationship)> = g
                .neighbors_at(idx)
                .iter()
                .map(|&(n, rel)| (n as u32, rel))
                .collect();
            let got: Vec<(u32, Relationship)> = csr
                .neighbors(idx)
                .iter()
                .map(|e| (e.node(), e.rel()))
                .collect();
            assert_eq!(got, expected);
            assert_eq!(csr.asn_at(idx), g.asn_at(idx));
        }
        assert_eq!(csr.asn_table().len(), g.len());
        assert!(AsGraph::new().csr().is_empty());
    }

    #[test]
    fn csr_invalidated_by_mutations() {
        let mut g = triangle();
        let v0 = g.version();
        assert_eq!(g.csr().neighbors(0).len(), 2);

        g.add_link(Asn(2), Asn(4), Relationship::Customer).unwrap();
        assert!(g.version() != v0, "add_link must bump the version");
        assert_eq!(g.csr().len(), 4);
        let deg2 = g.csr().neighbors(g.index_of(Asn(2)).unwrap()).len();
        assert_eq!(deg2, 3);

        g.remove_link(Asn(2), Asn(4));
        assert_eq!(g.csr().neighbors(g.index_of(Asn(2)).unwrap()).len(), 2);

        let before = g.version();
        g.sort_neighbors();
        assert!(
            g.version() != before,
            "sort_neighbors must bump the version"
        );

        let before = g.version();
        g.add_as(Asn(2)); // already present: no mutation
        assert_eq!(g.version(), before);
        g.add_as(Asn(77));
        assert!(g.version() != before);
        assert_eq!(g.csr().len(), 5);
    }

    #[test]
    fn links_iterate_once_each() {
        let g = triangle();
        let links: Vec<_> = g.links().collect();
        assert_eq!(links.len(), 3);
        // Each unordered pair appears exactly once.
        let mut pairs: Vec<(Asn, Asn)> = links
            .iter()
            .map(|&(a, b, _)| if a < b { (a, b) } else { (b, a) })
            .collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn sibling_links() {
        let mut g = AsGraph::new();
        g.add_sibling(Asn(10), Asn(11)).unwrap();
        assert_eq!(
            g.relationship(Asn(10), Asn(11)),
            Some(Relationship::Sibling)
        );
        assert_eq!(
            g.relationship(Asn(11), Asn(10)),
            Some(Relationship::Sibling)
        );
    }

    #[test]
    fn degree_ranking() {
        let mut g = triangle();
        g.add_provider_customer(Asn(1), Asn(4)).unwrap();
        let ranked = g.asns_by_degree();
        assert_eq!(ranked[0], Asn(1)); // degree 3
                                       // Ties (2 and 3, both degree 2) break by ascending ASN.
        assert_eq!(&ranked[1..3], &[Asn(2), Asn(3)]);
        assert_eq!(ranked[3], Asn(4));
    }

    #[test]
    fn sort_neighbors_orders_by_asn() {
        let mut g = AsGraph::new();
        g.add_provider_customer(Asn(1), Asn(30)).unwrap();
        g.add_provider_customer(Asn(1), Asn(20)).unwrap();
        g.add_provider_customer(Asn(1), Asn(10)).unwrap();
        g.sort_neighbors();
        let order: Vec<Asn> = g.neighbors(Asn(1)).map(|(a, _)| a).collect();
        assert_eq!(order, vec![Asn(10), Asn(20), Asn(30)]);
    }

    #[test]
    fn dense_index_round_trip() {
        let g = triangle();
        for asn in g.asns() {
            let idx = g.index_of(asn).unwrap();
            assert_eq!(g.asn_at(idx), asn);
        }
        assert_eq!(g.index_of(Asn(99)), None);
    }

    #[test]
    fn remove_link_works_both_directions() {
        let mut g = triangle();
        assert_eq!(g.remove_link(Asn(2), Asn(1)), Some(Relationship::Provider));
        assert_eq!(g.relationship(Asn(1), Asn(2)), None);
        assert_eq!(g.relationship(Asn(2), Asn(1)), None);
        assert_eq!(g.link_count(), 2);
        // Removing again is a no-op returning None.
        assert_eq!(g.remove_link(Asn(1), Asn(2)), None);
        // Nodes and indices survive.
        assert!(g.contains(Asn(1)) && g.contains(Asn(2)));
    }

    #[test]
    fn add_as_is_idempotent() {
        let mut g = AsGraph::new();
        let a = g.add_as(Asn(7));
        let b = g.add_as(Asn(7));
        assert_eq!(a, b);
        assert_eq!(g.len(), 1);
    }
}
