//! Synthetic hierarchical Internet generator.
//!
//! The paper simulates attacks "on the real Internet topology" inferred from
//! RouteViews/RIPE tables. Those archives are not available offline, so this
//! module generates a structurally equivalent stand-in: a provider-free
//! tier-1 clique, multi-homed tier-2/tier-3 transit layers, a large stub
//! fringe, and a handful of *richly-peered content ASes* that reproduce the
//! paper's Figure 11 observation that "a small but well-connected enterprise
//! ISP can even intercept a Tier-1 ISP's traffic".
//!
//! Generation is fully deterministic given a seed, so experiments and benches
//! are reproducible.

use aspp_types::{Asn, Relationship};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::AsGraph;

/// Pool size at which [`InternetConfig::build`] switches the peering sweep
/// from the all-pairs Bernoulli loop to target-count pair sampling. Every
/// legacy preset's pools sit below this, so their output is untouched.
const SPRINKLE_SAMPLE_THRESHOLD: usize = 2_048;

/// ASN block in which generated tier-1 ASes live (`100`, `101`, …).
pub const TIER1_BASE: u32 = 100;
/// ASN block for tier-2 transit ASes.
pub const TIER2_BASE: u32 = 1_000;
/// ASN block for tier-3 regional ASes.
pub const TIER3_BASE: u32 = 10_000;
/// ASN block for stub (edge) ASes.
pub const STUB_BASE: u32 = 20_000;
/// ASN block for richly-peered content ASes.
pub const CONTENT_BASE: u32 = 90_000;

/// Configuration for the synthetic Internet generator.
///
/// Use one of the presets ([`small`](InternetConfig::small),
/// [`medium`](InternetConfig::medium), [`large`](InternetConfig::large)) and
/// refine with the builder methods.
///
/// # Example
///
/// ```
/// use aspp_topology::gen::InternetConfig;
/// use aspp_topology::tier::TierMap;
///
/// let graph = InternetConfig::small().seed(42).build();
/// let tiers = TierMap::classify(&graph);
/// // The core is a genuine clique, per the paper's tier-1 definition.
/// assert!(tiers.verify_tier1_clique(&graph).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct InternetConfig {
    num_tier1: usize,
    num_tier2: usize,
    num_tier3: usize,
    num_stubs: usize,
    num_content: usize,
    tier2_provider_range: (usize, usize),
    tier3_provider_range: (usize, usize),
    stub_provider_range: (usize, usize),
    tier2_peer_prob: f64,
    tier2_tier1_peer_prob: f64,
    tier3_peer_prob: f64,
    content_peer_fraction: f64,
    seed: u64,
}

impl InternetConfig {
    /// ~150-AS Internet: quick tests and doc examples.
    #[must_use]
    pub fn small() -> Self {
        InternetConfig {
            num_tier1: 6,
            num_tier2: 20,
            num_tier3: 40,
            num_stubs: 80,
            num_content: 3,
            tier2_provider_range: (2, 3),
            tier3_provider_range: (1, 3),
            stub_provider_range: (1, 2),
            tier2_peer_prob: 0.20,
            tier2_tier1_peer_prob: 0.25,
            tier3_peer_prob: 0.05,
            content_peer_fraction: 0.5,
            seed: 0,
        }
    }

    /// ~1500-AS Internet: the scale used for the paper-figure experiments.
    #[must_use]
    pub fn medium() -> Self {
        InternetConfig {
            num_tier1: 12,
            num_tier2: 120,
            num_tier3: 400,
            num_stubs: 950,
            num_content: 8,
            tier2_provider_range: (2, 4),
            tier3_provider_range: (1, 3),
            stub_provider_range: (1, 2),
            tier2_peer_prob: 0.08,
            tier2_tier1_peer_prob: 0.15,
            tier3_peer_prob: 0.01,
            content_peer_fraction: 0.4,
            seed: 0,
        }
    }

    /// ~5000-AS Internet: stress benchmarks.
    #[must_use]
    pub fn large() -> Self {
        InternetConfig {
            num_tier1: 14,
            num_tier2: 300,
            num_tier3: 1_200,
            num_stubs: 3_450,
            num_content: 16,
            tier2_provider_range: (2, 4),
            tier3_provider_range: (1, 3),
            stub_provider_range: (1, 2),
            tier2_peer_prob: 0.04,
            tier2_tier1_peer_prob: 0.1,
            tier3_peer_prob: 0.004,
            content_peer_fraction: 0.3,
            seed: 0,
        }
    }

    /// ~80,000-AS Internet, CAIDA-shaped: a routing-system-scale topology
    /// (~80k ASes, ~500k links) for the `--scale internet` tier. Same
    /// power-law construction as the smaller presets; the provider draws go
    /// through the Fenwick fast path and the dense peering layers through
    /// target-count sampling, so it builds in seconds rather than hours.
    ///
    /// Tier-3 is capped at 9,500 by the [`TIER3_BASE`]/[`STUB_BASE`] ASN
    /// block split; the stub fringe absorbs the difference, matching the
    /// real Internet's ~85% stub share.
    #[must_use]
    pub fn internet() -> Self {
        InternetConfig {
            num_tier1: 20,
            num_tier2: 4_000,
            num_tier3: 9_500,
            num_stubs: 66_000,
            num_content: 480,
            tier2_provider_range: (2, 4),
            tier3_provider_range: (1, 3),
            stub_provider_range: (1, 2),
            tier2_peer_prob: 0.015,
            tier2_tier1_peer_prob: 0.2,
            tier3_peer_prob: 0.003,
            content_peer_fraction: 0.015,
            seed: 0,
        }
    }

    /// ~20,000-AS Internet: the CI-sized cut of
    /// [`internet`](Self::internet) (the `--scale internet-smoke` tier),
    /// preserving its tier proportions and density character.
    #[must_use]
    pub fn internet_smoke() -> Self {
        InternetConfig {
            num_tier1: 15,
            num_tier2: 1_200,
            num_tier3: 4_000,
            num_stubs: 14_600,
            num_content: 185,
            tier2_provider_range: (2, 4),
            tier3_provider_range: (1, 3),
            stub_provider_range: (1, 2),
            tier2_peer_prob: 0.03,
            tier2_tier1_peer_prob: 0.2,
            tier3_peer_prob: 0.004,
            content_peer_fraction: 0.02,
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0). Identical configs and seeds produce
    /// identical graphs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of tier-1 core ASes (minimum 2).
    #[must_use]
    pub fn tier1_count(mut self, n: usize) -> Self {
        self.num_tier1 = n.max(2);
        self
    }

    /// Sets the number of tier-2 transit ASes.
    #[must_use]
    pub fn tier2_count(mut self, n: usize) -> Self {
        self.num_tier2 = n;
        self
    }

    /// Sets the number of tier-3 regional ASes.
    #[must_use]
    pub fn tier3_count(mut self, n: usize) -> Self {
        self.num_tier3 = n;
        self
    }

    /// Sets the number of stub ASes.
    #[must_use]
    pub fn stub_count(mut self, n: usize) -> Self {
        self.num_stubs = n;
        self
    }

    /// Sets the number of richly-peered content ASes.
    #[must_use]
    pub fn content_count(mut self, n: usize) -> Self {
        self.num_content = n;
        self
    }

    /// Sets the probability that any two tier-2 ASes peer.
    #[must_use]
    pub fn tier2_peer_prob(mut self, p: f64) -> Self {
        self.tier2_peer_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the probability that a tier-2 AS peers with any given tier-1 —
    /// the dense top-layer peering that lets routes compete peer-vs-peer by
    /// length, as on the real Internet.
    #[must_use]
    pub fn tier2_tier1_peer_prob(mut self, p: f64) -> Self {
        self.tier2_tier1_peer_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the fraction of transit ASes each content AS peers with.
    #[must_use]
    pub fn content_peer_fraction(mut self, p: f64) -> Self {
        self.content_peer_fraction = p.clamp(0.0, 1.0);
        self
    }

    /// Total number of ASes this configuration will generate.
    #[must_use]
    pub fn total_ases(&self) -> usize {
        self.num_tier1 + self.num_tier2 + self.num_tier3 + self.num_stubs + self.num_content
    }

    /// Generates the topology.
    ///
    /// The result always satisfies: (1) tier-1 ASes form a full peering
    /// clique and have no providers; (2) every non-tier-1 AS has at least one
    /// provider, so the graph is connected through the core; (3) adjacency
    /// lists are sorted by ASN for deterministic iteration.
    #[must_use]
    pub fn build(&self) -> AsGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut graph = AsGraph::with_capacity(self.total_ases());

        let tier1: Vec<Asn> = (0..self.num_tier1)
            .map(|i| Asn(TIER1_BASE + i as u32))
            .collect();
        let tier2: Vec<Asn> = (0..self.num_tier2)
            .map(|i| Asn(TIER2_BASE + i as u32))
            .collect();
        let tier3: Vec<Asn> = (0..self.num_tier3)
            .map(|i| Asn(TIER3_BASE + i as u32))
            .collect();
        let stubs: Vec<Asn> = (0..self.num_stubs)
            .map(|i| Asn(STUB_BASE + i as u32))
            .collect();
        let content: Vec<Asn> = (0..self.num_content)
            .map(|i| Asn(CONTENT_BASE + i as u32))
            .collect();

        // 1. Tier-1 full peering clique.
        for (i, &a) in tier1.iter().enumerate() {
            graph.add_as(a);
            for &b in &tier1[i + 1..] {
                graph.add_peering(a, b).expect("fresh clique edge");
            }
        }

        // 2. Tier-2: multi-homed to tier-1, sparse mutual peering, and some
        //    settlement-free peering up into the tier-1 layer.
        attach_providers_batch(
            &mut graph,
            &mut rng,
            &tier2,
            &tier1,
            self.tier2_provider_range,
        );
        self.sprinkle_peering(&mut graph, &mut rng, &tier2, self.tier2_peer_prob);
        if self.tier2_tier1_peer_prob > 0.0 {
            for &t2 in &tier2 {
                for &t1 in &tier1 {
                    if rng.gen_bool(self.tier2_tier1_peer_prob) {
                        // Skip pairs already linked as provider/customer.
                        let _ = graph.add_peering(t2, t1);
                    }
                }
            }
        }

        // 3. Tier-3: multi-homed to tier-2, very sparse peering.
        attach_providers_batch(
            &mut graph,
            &mut rng,
            &tier3,
            &tier2,
            self.tier3_provider_range,
        );
        self.sprinkle_peering(&mut graph, &mut rng, &tier3, self.tier3_peer_prob);

        // 4. Stubs: providers drawn from tier-2 ∪ tier-3.
        let transit: Vec<Asn> = tier2.iter().chain(tier3.iter()).copied().collect();
        attach_providers_batch(
            &mut graph,
            &mut rng,
            &stubs,
            &transit,
            self.stub_provider_range,
        );

        // 5. Content ASes: one or two transit providers plus rich peering
        //    across every layer, tier-1 included — the "well-connected
        //    enterprise" of the paper's Figure 11.
        for &asn in &content {
            self.attach_providers(&mut graph, &mut rng, asn, &tier2, (1, 2));
            let mut candidates: Vec<Asn> = tier1.iter().chain(transit.iter()).copied().collect();
            let peer_count = ((candidates.len() as f64) * self.content_peer_fraction) as usize;
            candidates.shuffle(&mut rng);
            for &peer in candidates.iter().take(peer_count) {
                // Skip pairs already linked as provider/customer.
                let _ = graph.add_peering(asn, peer);
            }
        }

        graph.sort_neighbors();
        graph
    }

    /// Attaches `customer` to providers sampled from `pool` with
    /// preferential attachment (probability proportional to current degree),
    /// which produces the heavy-tailed customer-cone distribution of the
    /// real Internet: a few transit ASes become huge, most stay small.
    fn attach_providers(
        &self,
        graph: &mut AsGraph,
        rng: &mut StdRng,
        customer: Asn,
        pool: &[Asn],
        (lo, hi): (usize, usize),
    ) {
        graph.add_as(customer);
        let want = rng.gen_range(lo..=hi).min(pool.len());
        let mut chosen: Vec<Asn> = Vec::with_capacity(want);
        while chosen.len() < want {
            let total: usize = pool
                .iter()
                .filter(|p| !chosen.contains(p))
                .map(|&p| graph.degree(p) + 1)
                .sum();
            if total == 0 {
                break;
            }
            let mut ticket = rng.gen_range(0..total);
            let pick = pool
                .iter()
                .filter(|p| !chosen.contains(p))
                .find(|&&p| {
                    let w = graph.degree(p) + 1;
                    if ticket < w {
                        true
                    } else {
                        ticket -= w;
                        false
                    }
                })
                .copied()
                .expect("ticket is within total weight");
            chosen.push(pick);
        }
        for provider in chosen {
            graph
                .add_provider_customer(provider, customer)
                .expect("provider pool is disjoint from customer block");
        }
    }

    fn sprinkle_peering(&self, graph: &mut AsGraph, rng: &mut StdRng, pool: &[Asn], prob: f64) {
        if prob <= 0.0 {
            return;
        }
        if pool.len() >= SPRINKLE_SAMPLE_THRESHOLD {
            sprinkle_peering_sampled(graph, rng, pool, prob);
            return;
        }
        for (i, &a) in pool.iter().enumerate() {
            for &b in &pool[i + 1..] {
                if rng.gen_bool(prob) {
                    let _ = graph.add_peering(a, b);
                }
            }
        }
    }
}

/// Fenwick (binary-indexed) tree over the provider pool's attachment
/// weights: prefix-sum queries and point updates in O(log n), plus the
/// classic bit-descent [`find`](Self::find) that resolves a lottery ticket
/// to the element containing it — the O(log n) replacement for the linear
/// ticket scan in [`InternetConfig::attach_providers`].
struct WeightTree {
    tree: Vec<u64>,
}

impl WeightTree {
    fn from_weights(weights: &[u64]) -> Self {
        let mut t = WeightTree {
            tree: vec![0; weights.len() + 1],
        };
        for (i, &w) in weights.iter().enumerate() {
            t.increase(i, w);
        }
        t
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    fn increase(&mut self, i: usize, delta: u64) {
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] += delta;
            j += j & j.wrapping_neg();
        }
    }

    /// Removes `delta` from element `i`; `delta` must not exceed the
    /// element's current value.
    fn decrease(&mut self, i: usize, delta: u64) {
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] -= delta;
            j += j & j.wrapping_neg();
        }
    }

    fn total(&self) -> u64 {
        let mut i = self.len();
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// The 0-based index of the element whose cumulative weight range
    /// contains `ticket` — the smallest `i` with `prefix(i + 1) > ticket`.
    /// Zero-weight (already-chosen) elements are never returned.
    fn find(&self, mut ticket: u64) -> usize {
        let n = self.len();
        let mut pos = 0;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= ticket {
                pos = next;
                ticket -= self.tree[next];
            }
            step >>= 1;
        }
        pos
    }
}

/// Phase-level fast path for [`InternetConfig::attach_providers`]: attaches
/// every AS in `customers` to providers drawn from `pool`, consuming the
/// *identical* RNG sequence — one `gen_range(lo..=hi)` per customer, one
/// `gen_range(0..total)` per draw with the same running totals — so the
/// resulting graph is bit-for-bit the one the per-customer linear scan
/// builds. Each ticket resolves through a [`WeightTree`] in O(log n)
/// instead of an O(n) pool rescan, which is what makes the 80k-AS preset
/// build in seconds.
///
/// Callers must guarantee `pool` and `customers` occupy disjoint ASN blocks
/// with no pre-existing links between them (the tiered construction does,
/// structurally) — the precondition for `add_link_unchecked`.
fn attach_providers_batch(
    graph: &mut AsGraph,
    rng: &mut StdRng,
    customers: &[Asn],
    pool: &[Asn],
    (lo, hi): (usize, usize),
) {
    let mut weights: Vec<u64> = pool.iter().map(|&p| graph.degree(p) as u64 + 1).collect();
    let mut tree = WeightTree::from_weights(&weights);
    let mut chosen: Vec<usize> = Vec::new();
    for &customer in customers {
        graph.add_as(customer);
        let want = rng.gen_range(lo..=hi).min(pool.len());
        chosen.clear();
        while chosen.len() < want {
            let total = tree.total() as usize;
            if total == 0 {
                break;
            }
            let ticket = rng.gen_range(0..total);
            let pick = tree.find(ticket as u64);
            // Zero the pick's weight so later draws for this customer
            // exclude it, exactly as the linear scan's `chosen` filter does.
            tree.decrease(pick, weights[pick]);
            chosen.push(pick);
        }
        for &pick in &chosen {
            graph.add_link_unchecked(pool[pick], customer, Relationship::Customer);
            // Restore the weight, +1 for the degree the new link added.
            weights[pick] += 1;
            tree.increase(pick, weights[pick]);
        }
    }
}

/// Peering sweep for internet-scale pools, where the all-pairs Bernoulli
/// loop would burn O(n²) RNG draws: hit the sweep's expected edge count
/// deterministically by sampling random pairs until `round(pairs × prob)`
/// distinct peerings exist. Same density, different (still seeded,
/// deterministic) RNG stream — which is why only pools at or above
/// [`SPRINKLE_SAMPLE_THRESHOLD`] take this path.
fn sprinkle_peering_sampled(graph: &mut AsGraph, rng: &mut StdRng, pool: &[Asn], prob: f64) {
    let n = pool.len();
    let pairs = n * (n - 1) / 2;
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let target = ((pairs as f64) * prob).round() as usize;
    // Collisions (self-pairs, duplicates, existing links) are resampled; the
    // cap only guards against a target near the pool's saturation point,
    // which no preset approaches.
    let max_attempts = target.saturating_mul(8) + 1_024;
    let mut added = 0;
    for _ in 0..max_attempts {
        if added >= target {
            break;
        }
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        if graph.add_peering(pool[i], pool[j]).is_ok() {
            added += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::TierMap;
    use aspp_types::Relationship;

    #[test]
    fn small_preset_shape() {
        let cfg = InternetConfig::small().seed(1);
        let g = cfg.build();
        assert_eq!(g.len(), cfg.total_ases());
        let tiers = TierMap::classify(&g);
        assert_eq!(tiers.tier1().count(), 6);
        assert!(tiers.verify_tier1_clique(&g).is_ok());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = InternetConfig::small().seed(99).build();
        let b = InternetConfig::small().seed(99).build();
        let la: Vec<_> = a.links().collect();
        let lb: Vec<_> = b.links().collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = InternetConfig::small().seed(1).build();
        let b = InternetConfig::small().seed(2).build();
        let la: Vec<_> = a.links().collect();
        let lb: Vec<_> = b.links().collect();
        assert_ne!(la, lb);
    }

    #[test]
    fn every_non_tier1_as_has_a_provider() {
        let g = InternetConfig::small().seed(3).build();
        for asn in g.asns() {
            let is_tier1 = (TIER1_BASE..TIER1_BASE + 100).contains(&asn.value());
            if !is_tier1 {
                assert!(
                    g.providers(asn).next().is_some(),
                    "AS{asn} should have a provider"
                );
            }
        }
    }

    #[test]
    fn all_ases_reachable_from_core() {
        let g = InternetConfig::small().seed(4).build();
        let tiers = TierMap::classify(&g);
        for asn in g.asns() {
            assert_ne!(
                tiers.tier_of(asn),
                Some(TierMap::UNREACHABLE),
                "AS{asn} unreachable from tier-1 core"
            );
        }
    }

    #[test]
    fn content_ases_are_richly_peered() {
        let g = InternetConfig::small().seed(5).build();
        let content = Asn(CONTENT_BASE);
        let peer_count = g.peers(content).count();
        let stub_peer_avg = (0..20)
            .map(|i| g.peers(Asn(STUB_BASE + i)).count())
            .sum::<usize>() as f64
            / 20.0;
        assert!(
            peer_count as f64 > stub_peer_avg + 5.0,
            "content AS should peer far more than stubs ({peer_count} vs avg {stub_peer_avg})"
        );
    }

    #[test]
    fn stubs_have_no_customers() {
        let g = InternetConfig::small().seed(6).build();
        for i in 0..80 {
            let stub = Asn(STUB_BASE + i);
            assert_eq!(g.customers(stub).count(), 0, "stub AS{stub} has customers");
        }
    }

    #[test]
    fn medium_preset_scales() {
        let cfg = InternetConfig::medium().seed(7);
        let g = cfg.build();
        assert_eq!(g.len(), cfg.total_ases());
        assert!(g.len() >= 1400);
        let tiers = TierMap::classify(&g);
        assert!(tiers.verify_tier1_clique(&g).is_ok());
        assert!(tiers.max_tier() >= 3);
    }

    #[test]
    fn builder_overrides_apply() {
        let g = InternetConfig::small()
            .tier1_count(4)
            .tier2_count(5)
            .tier3_count(5)
            .stub_count(10)
            .content_count(0)
            .seed(8)
            .build();
        assert_eq!(g.len(), 24);
        let tiers = TierMap::classify(&g);
        assert_eq!(tiers.tier1().count(), 4);
    }

    #[test]
    fn tier1_count_clamped_to_two() {
        let g = InternetConfig::small()
            .tier1_count(0)
            .tier2_count(2)
            .tier3_count(0)
            .stub_count(0)
            .content_count(0)
            .build();
        let tiers = TierMap::classify(&g);
        assert_eq!(tiers.tier1().count(), 2);
    }

    #[test]
    fn no_duplicate_links() {
        let g = InternetConfig::small().seed(10).build();
        let mut pairs: Vec<(Asn, Asn)> = g
            .links()
            .map(|(a, b, _)| if a < b { (a, b) } else { (b, a) })
            .collect();
        let before = pairs.len();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), before);
    }

    #[test]
    fn fenwick_batch_is_bit_identical_to_linear_scan() {
        // Same seed, same pool, same customers: the per-customer linear
        // ticket scan and the phase-level Fenwick path must consume the RNG
        // identically and therefore build the identical graph — including
        // the preferential-attachment feedback as pool degrees grow.
        let pool: Vec<Asn> = (0..50).map(|i| Asn(TIER1_BASE + i)).collect();
        let customers: Vec<Asn> = (0..300).map(|i| Asn(STUB_BASE + i)).collect();
        let cfg = InternetConfig::small();

        let mut legacy = AsGraph::with_capacity(350);
        for &p in &pool {
            legacy.add_as(p);
        }
        let mut rng = StdRng::seed_from_u64(77);
        for &c in &customers {
            cfg.attach_providers(&mut legacy, &mut rng, c, &pool, (1, 3));
        }

        let mut fast = AsGraph::with_capacity(350);
        for &p in &pool {
            fast.add_as(p);
        }
        let mut rng = StdRng::seed_from_u64(77);
        attach_providers_batch(&mut fast, &mut rng, &customers, &pool, (1, 3));

        let legacy_links: Vec<_> = legacy.links().collect();
        let fast_links: Vec<_> = fast.links().collect();
        assert_eq!(legacy_links, fast_links);
    }

    #[test]
    fn internet_presets_are_sized_to_their_tiers() {
        assert_eq!(InternetConfig::internet().total_ases(), 80_000);
        assert_eq!(InternetConfig::internet_smoke().total_ases(), 20_000);
    }

    #[test]
    fn internet_smoke_builds_a_well_formed_graph() {
        let cfg = InternetConfig::internet_smoke().seed(13);
        let g = cfg.build();
        assert_eq!(g.len(), 20_000);
        let tiers = TierMap::classify(&g);
        assert_eq!(tiers.tier1().count(), 15);
        assert!(tiers.verify_tier1_clique(&g).is_ok());
        // No self-links or duplicate links anywhere, including the sampled
        // peering and unchecked provider-attachment fast paths.
        let mut pairs: Vec<(Asn, Asn)> = g
            .links()
            .map(|(a, b, _)| if a < b { (a, b) } else { (b, a) })
            .collect();
        for &(a, b) in &pairs {
            assert_ne!(a, b, "self-loop at AS{a}");
        }
        let before = pairs.len();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), before, "duplicate links");
        // Every non-tier-1 AS bought transit, so the graph hangs together
        // through the core.
        for asn in g.asns() {
            let is_tier1 = (TIER1_BASE..TIER1_BASE + 100).contains(&asn.value());
            if !is_tier1 {
                assert!(
                    g.providers(asn).next().is_some(),
                    "AS{asn} should have a provider"
                );
            }
        }
    }

    #[test]
    fn sampled_peering_path_is_deterministic() {
        // tier3_count ≥ SPRINKLE_SAMPLE_THRESHOLD forces the sampled
        // peering sweep, which must stay seed-reproducible like the rest.
        let cfg = InternetConfig::small().tier3_count(2_500).stub_count(100);
        let a = cfg.clone().seed(21).build();
        let b = cfg.clone().seed(21).build();
        let la: Vec<_> = a.links().collect();
        let lb: Vec<_> = b.links().collect();
        assert_eq!(la, lb);
        let c = cfg.seed(22).build();
        let lc: Vec<_> = c.links().collect();
        assert_ne!(la, lc);
    }

    #[test]
    fn relationships_well_formed() {
        let g = InternetConfig::small().seed(11).build();
        for (a, b, rel) in g.links() {
            assert_eq!(g.relationship(a, b), Some(rel));
            assert_eq!(g.relationship(b, a), Some(rel.reverse()));
            assert_ne!(rel, Relationship::Sibling, "generator emits no siblings");
        }
    }
}
