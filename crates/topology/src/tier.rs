//! Tier classification and customer-cone analytics.
//!
//! The paper's impact analysis distinguishes attacker/victim locations by
//! tier: "a tier-1 AS is an AS with no providers and is peering with all
//! other tier-1 ASes" (Section VI-B). Lower tiers are defined by provider
//! distance from the core: a tier-k AS buys transit from some tier-(k-1) AS.

use std::collections::{HashMap, HashSet, VecDeque};

use aspp_types::Asn;

use crate::AsGraph;

/// Tier assignment for every AS in a graph.
///
/// Tier 1 is the provider-free core; an AS at tier *k* > 1 has its best
/// (lowest-tier) provider at tier *k − 1*. ASes unreachable from the core by
/// provider→customer edges (possible in pathological graphs) are assigned
/// [`TierMap::UNREACHABLE`].
///
/// # Example
///
/// ```
/// use aspp_topology::{AsGraph, tier::TierMap};
/// use aspp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = AsGraph::new();
/// g.add_peering(Asn(1), Asn(2))?;             // two tier-1s
/// g.add_provider_customer(Asn(1), Asn(10))?;  // tier-2
/// g.add_provider_customer(Asn(10), Asn(100))?; // tier-3 stub
/// let tiers = TierMap::classify(&g);
/// assert_eq!(tiers.tier_of(Asn(1)), Some(1));
/// assert_eq!(tiers.tier_of(Asn(10)), Some(2));
/// assert_eq!(tiers.tier_of(Asn(100)), Some(3));
/// assert!(tiers.is_stub(&g, Asn(100)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TierMap {
    tiers: HashMap<Asn, u32>,
}

impl TierMap {
    /// Tier value assigned to ASes with no provider path from the core.
    pub const UNREACHABLE: u32 = u32::MAX;

    /// Classifies every AS in `graph`.
    ///
    /// Tier-1 ASes are those with no providers; every other AS's tier is one
    /// more than the minimum tier among its providers (BFS from the core).
    /// Sibling links are ignored for tier computation.
    #[must_use]
    pub fn classify(graph: &AsGraph) -> Self {
        let mut tiers: HashMap<Asn, u32> = HashMap::with_capacity(graph.len());
        let mut queue: VecDeque<Asn> = VecDeque::new();

        for asn in graph.asns() {
            if graph.providers(asn).next().is_none() {
                tiers.insert(asn, 1);
                queue.push_back(asn);
            }
        }

        // Multi-source BFS down provider->customer edges.
        while let Some(asn) = queue.pop_front() {
            let next_tier = tiers[&asn] + 1;
            for customer in graph.customers(asn) {
                let entry = tiers.entry(customer).or_insert(u32::MAX);
                if next_tier < *entry {
                    *entry = next_tier;
                    queue.push_back(customer);
                }
            }
        }

        for asn in graph.asns() {
            tiers.entry(asn).or_insert(Self::UNREACHABLE);
        }

        TierMap { tiers }
    }

    /// The tier of `asn`, or `None` if it was not in the classified graph.
    #[must_use]
    pub fn tier_of(&self, asn: Asn) -> Option<u32> {
        self.tiers.get(&asn).copied()
    }

    /// Iterates over all tier-1 (provider-free core) ASes.
    pub fn tier1(&self) -> impl Iterator<Item = Asn> + '_ {
        self.in_tier(1)
    }

    /// Iterates over all ASes at exactly tier `t`.
    pub fn in_tier(&self, t: u32) -> impl Iterator<Item = Asn> + '_ {
        self.tiers
            .iter()
            .filter(move |&(_, &tier)| tier == t)
            .map(|(&asn, _)| asn)
    }

    /// The deepest finite tier present.
    #[must_use]
    pub fn max_tier(&self) -> u32 {
        self.tiers
            .values()
            .copied()
            .filter(|&t| t != Self::UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if `asn` has no customers (an edge/stub network).
    #[must_use]
    pub fn is_stub(&self, graph: &AsGraph, asn: Asn) -> bool {
        graph.customers(asn).next().is_none()
    }

    /// Verifies the paper's tier-1 definition: every pair of tier-1 ASes is
    /// connected by a peering (or sibling) link. Returns the offending pair
    /// on failure.
    ///
    /// # Errors
    ///
    /// Returns the first tier-1 pair found without a direct peering/sibling
    /// link.
    pub fn verify_tier1_clique(&self, graph: &AsGraph) -> Result<(), (Asn, Asn)> {
        let mut t1: Vec<Asn> = self.tier1().collect();
        t1.sort();
        for (i, &a) in t1.iter().enumerate() {
            for &b in &t1[i + 1..] {
                match graph.relationship(a, b) {
                    Some(aspp_types::Relationship::Peer)
                    | Some(aspp_types::Relationship::Sibling) => {}
                    _ => return Err((a, b)),
                }
            }
        }
        Ok(())
    }
}

/// Computes the customer cone of `asn`: the set of ASes reachable from it by
/// repeatedly following provider→customer (or sibling) edges, including
/// `asn` itself. The paper uses cone membership to reason about which ASes
/// resist pollution ("an AS is not polluted only if it is a direct or
/// indirect customer of the victim …", Section VI-B).
///
/// # Example
///
/// ```
/// use aspp_topology::{AsGraph, tier::customer_cone};
/// use aspp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = AsGraph::new();
/// g.add_provider_customer(Asn(1), Asn(2))?;
/// g.add_provider_customer(Asn(2), Asn(3))?;
/// g.add_provider_customer(Asn(9), Asn(3))?; // 3 is multi-homed
/// let cone = customer_cone(&g, Asn(1));
/// assert!(cone.contains(&Asn(1)) && cone.contains(&Asn(2)) && cone.contains(&Asn(3)));
/// assert!(!cone.contains(&Asn(9)));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn customer_cone(graph: &AsGraph, asn: Asn) -> HashSet<Asn> {
    let mut cone = HashSet::new();
    if !graph.contains(asn) {
        return cone;
    }
    let mut queue = VecDeque::new();
    cone.insert(asn);
    queue.push_back(asn);
    while let Some(current) = queue.pop_front() {
        for (neighbor, rel) in graph.neighbors(current) {
            if matches!(
                rel,
                aspp_types::Relationship::Customer | aspp_types::Relationship::Sibling
            ) && cone.insert(neighbor)
            {
                queue.push_back(neighbor);
            }
        }
    }
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspp_types::Relationship;

    /// Small hierarchy:
    ///   1 -- 2 (peers, tier-1 clique)
    ///   1 -> 10, 2 -> 11 (tier-2)
    ///   10 -> 100, 11 -> 100 (multi-homed tier-3)
    fn hierarchy() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_peering(Asn(1), Asn(2)).unwrap();
        g.add_provider_customer(Asn(1), Asn(10)).unwrap();
        g.add_provider_customer(Asn(2), Asn(11)).unwrap();
        g.add_provider_customer(Asn(10), Asn(100)).unwrap();
        g.add_provider_customer(Asn(11), Asn(100)).unwrap();
        g
    }

    #[test]
    fn classification_levels() {
        let g = hierarchy();
        let tiers = TierMap::classify(&g);
        assert_eq!(tiers.tier_of(Asn(1)), Some(1));
        assert_eq!(tiers.tier_of(Asn(2)), Some(1));
        assert_eq!(tiers.tier_of(Asn(10)), Some(2));
        assert_eq!(tiers.tier_of(Asn(11)), Some(2));
        assert_eq!(tiers.tier_of(Asn(100)), Some(3));
        assert_eq!(tiers.tier_of(Asn(999)), None);
        assert_eq!(tiers.max_tier(), 3);
    }

    #[test]
    fn tier1_iterator_and_clique_check() {
        let g = hierarchy();
        let tiers = TierMap::classify(&g);
        let mut t1: Vec<Asn> = tiers.tier1().collect();
        t1.sort();
        assert_eq!(t1, vec![Asn(1), Asn(2)]);
        assert_eq!(tiers.verify_tier1_clique(&g), Ok(()));
    }

    #[test]
    fn clique_violation_detected() {
        let mut g = hierarchy();
        // A third provider-free AS not peering with the others.
        g.add_provider_customer(Asn(3), Asn(12)).unwrap();
        let tiers = TierMap::classify(&g);
        let err = tiers.verify_tier1_clique(&g).unwrap_err();
        assert!(err.0 == Asn(3) || err.1 == Asn(3));
    }

    #[test]
    fn multihomed_takes_minimum_tier() {
        let mut g = hierarchy();
        // 100 also buys directly from tier-1 AS1 -> becomes tier-2.
        g.add_provider_customer(Asn(1), Asn(100)).unwrap();
        let tiers = TierMap::classify(&g);
        assert_eq!(tiers.tier_of(Asn(100)), Some(2));
    }

    #[test]
    fn stub_detection() {
        let g = hierarchy();
        let tiers = TierMap::classify(&g);
        assert!(tiers.is_stub(&g, Asn(100)));
        assert!(!tiers.is_stub(&g, Asn(10)));
    }

    #[test]
    fn cone_includes_sibling_reachable() {
        let mut g = hierarchy();
        g.add_sibling(Asn(100), Asn(101)).unwrap();
        let cone = customer_cone(&g, Asn(10));
        assert!(cone.contains(&Asn(101)), "siblings join the cone");
        assert_eq!(customer_cone(&g, Asn(999)).len(), 0);
    }

    #[test]
    fn cone_never_climbs_up_or_across() {
        let mut g = hierarchy();
        g.add_peering(Asn(10), Asn(11)).unwrap();
        let cone = customer_cone(&g, Asn(10));
        assert!(!cone.contains(&Asn(1)), "providers excluded");
        assert!(!cone.contains(&Asn(11)), "peers excluded");
        assert!(cone.contains(&Asn(100)));
    }

    #[test]
    fn isolated_cycle_is_unreachable() {
        // Customer cycle with no provider-free entry point.
        let mut g = AsGraph::new();
        g.add_provider_customer(Asn(1), Asn(2)).unwrap();
        g.add_provider_customer(Asn(2), Asn(3)).unwrap();
        g.add_provider_customer(Asn(3), Asn(1)).unwrap();
        let tiers = TierMap::classify(&g);
        for asn in [Asn(1), Asn(2), Asn(3)] {
            assert_eq!(tiers.tier_of(asn), Some(TierMap::UNREACHABLE));
        }
        assert_eq!(tiers.max_tier(), 0);
    }

    #[test]
    fn peer_only_as_is_tier1_by_definition() {
        let mut g = AsGraph::new();
        g.add_peering(Asn(5), Asn(6)).unwrap();
        let tiers = TierMap::classify(&g);
        assert_eq!(tiers.tier_of(Asn(5)), Some(1));
        assert_eq!(g.relationship(Asn(5), Asn(6)), Some(Relationship::Peer));
    }
}
