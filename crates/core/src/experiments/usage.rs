//! ASPP usage characterization — the paper's Figures 5 and 6 and the
//! Section VI-A headline numbers.

use std::collections::BTreeMap;

use aspp_data::measure::{
    self, fraction_cdf, table_depth_distribution, update_depth_distribution, UsageSummary,
};
use aspp_data::stats::Cdf;
use aspp_data::tier1_monitors;
use aspp_data::{Corpus, CorpusConfig};

use super::Scale;
use crate::report::{render_series, TextTable};

/// Result of the usage characterization.
#[derive(Clone, Debug)]
pub struct UsageResult {
    /// The generated corpus (so callers can persist or re-measure it).
    pub corpus: Corpus,
    /// Figure 5, "all (table)": CDF across monitors of the fraction of
    /// prefixes with prepending in the table view.
    pub all_table_cdf: Cdf,
    /// Figure 5, "tier 1 (table)": same, tier-1 monitors only.
    pub tier1_table_cdf: Cdf,
    /// Figure 5, "all (updates)": same, over announced updates.
    pub updates_cdf: Cdf,
    /// Figure 6, "table": padding depth -> fraction (log-scale in paper).
    pub table_depth: BTreeMap<usize, f64>,
    /// Figure 6, "updates".
    pub update_depth: BTreeMap<usize, f64>,
    /// Section VI-A headline numbers.
    pub summary: UsageSummary,
}

/// Generates the corpus at `scale` and measures it.
#[must_use]
pub fn run(scale: Scale, seed: u64) -> UsageResult {
    let graph = scale.internet(seed);
    let corpus = CorpusConfig::new(scale.corpus_prefixes())
        .monitors_top_degree(scale.corpus_monitors())
        .seed(seed)
        .generate(&graph);

    let table_fractions = measure::table_prepending_fractions(&corpus);
    let t1 = tier1_monitors(&graph, &corpus);
    let tier1_fractions = measure::table_prepending_fractions_for(&corpus, &t1);
    let update_fractions = measure::update_prepending_fractions(&corpus);

    UsageResult {
        all_table_cdf: fraction_cdf(&table_fractions),
        tier1_table_cdf: fraction_cdf(&tier1_fractions),
        updates_cdf: fraction_cdf(&update_fractions),
        table_depth: table_depth_distribution(&corpus),
        update_depth: update_depth_distribution(&corpus),
        summary: measure::usage_summary(&corpus),
        corpus,
    }
}

impl UsageResult {
    /// Renders the Figure 5 curves and the Figure 6 histogram.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&render_series(
            "Figure 5 — all (table)",
            "fraction_with_prepending",
            "CDF",
            &self.all_table_cdf.points(),
        ));
        out.push('\n');
        out.push_str(&render_series(
            "Figure 5 — tier 1 (table)",
            "fraction_with_prepending",
            "CDF",
            &self.tier1_table_cdf.points(),
        ));
        out.push('\n');
        out.push_str(&render_series(
            "Figure 5 — all (updates)",
            "fraction_with_prepending",
            "CDF",
            &self.updates_cdf.points(),
        ));
        out.push('\n');

        let mut depth = TextTable::new(["prepended ASNs", "table fraction", "updates fraction"]);
        let depths: std::collections::BTreeSet<usize> = self
            .table_depth
            .keys()
            .chain(self.update_depth.keys())
            .copied()
            .collect();
        for d in depths {
            depth.row([
                d.to_string(),
                format!("{:.6}", self.table_depth.get(&d).copied().unwrap_or(0.0)),
                format!("{:.6}", self.update_depth.get(&d).copied().unwrap_or(0.0)),
            ]);
        }
        out.push_str(&format!("# Figure 6 — number of duplicate ASNs\n{depth}\n"));
        out.push_str(&format!(
            "headline: mean table fraction {:.1}% (paper: ~13%), max {:.1}% (paper: up to 30%), \
             depth-2 share {:.0}% (paper: 34%), depth-3 share {:.0}% (paper: 22%), \
             >10 share {:.1}% (paper: ~1%)\n",
            self.summary.mean_table_fraction * 100.0,
            self.summary.max_table_fraction * 100.0,
            self.summary.depth2_share * 100.0,
            self.summary.depth3_share * 100.0,
            self.summary.deep_share * 100.0 + 0.0,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_shape() {
        let result = run(Scale::Smoke, 11);
        // Some prepending is visible in tables.
        assert!(result.summary.mean_table_fraction > 0.0);
        // Depth distribution is dominated by shallow pads.
        let d2 = result.table_depth.get(&2).copied().unwrap_or(0.0);
        let d6 = result.table_depth.get(&6).copied().unwrap_or(0.0);
        assert!(d2 > d6);
        // All three Figure 5 curves have data.
        assert!(!result.all_table_cdf.is_empty());
        assert!(!result.tier1_table_cdf.is_empty());
        assert!(!result.updates_cdf.is_empty());
    }

    #[test]
    fn updates_show_more_prepending_than_tables() {
        // Paper: "in the update files, we also observe more routes with
        // prepending ASes".
        let result = run(Scale::Smoke, 12);
        assert!(
            result.updates_cdf.mean() >= result.all_table_cdf.mean(),
            "updates {:.3} vs tables {:.3}",
            result.updates_cdf.mean(),
            result.all_table_cdf.mean()
        );
    }

    #[test]
    fn render_mentions_both_figures() {
        let result = run(Scale::Smoke, 13);
        let text = result.render();
        assert!(text.contains("Figure 5"));
        assert!(text.contains("Figure 6"));
        assert!(text.contains("headline"));
    }
}
