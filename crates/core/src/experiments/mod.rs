//! One typed entry point per table and figure of the paper's evaluation.
//!
//! | Paper artifact | Module / function |
//! |----------------|-------------------|
//! | Figure 1 + Table I (Facebook anomaly) | [`case_study::run`] |
//! | Figure 5 (fraction of routes with prepending) | [`usage::run`] |
//! | Figure 6 (number of duplicate ASNs) | [`usage::run`] |
//! | Figure 7 (tier-1 vs tier-1 instances) | [`impact::fig7`] |
//! | Figure 8 (random pairs) | [`impact::fig8`] |
//! | Figure 9 (T1 hijacks T1, λ sweep) | [`impact::fig9`] |
//! | Figure 10 (T1 hijacks T3, λ sweep) | [`impact::fig10`] |
//! | Figure 11 (small hijacks T1, export modes) | [`impact::fig11`] |
//! | Figure 12 (small hijacks small, export modes) | [`impact::fig12`] |
//! | Figure 13 (detection accuracy vs monitors) | [`detection::fig13`] |
//! | Figure 14 (pollution before detection CDF) | [`detection::fig14`] |
//!
//! Beyond the paper's evaluation: [`detection::vantage_selection`] (its
//! future-work monitor-placement study), [`extensions::stealth`] (the
//! visibility comparison against origin-hijack and forged-adjacency
//! baselines), [`extensions::mitigations`] (reactive defenses), and
//! [`defense::run`] (proactive per-AS defense policies — ROV, ASPA,
//! peerlock-lite, first-AS enforcement — swept over deployment strategies
//! and adoption fractions).

pub mod case_study;
pub mod defense;
pub mod detection;
pub mod extensions;
pub mod impact;
pub mod scenario;
pub mod usage;

use aspp_topology::gen::InternetConfig;
use aspp_topology::AsGraph;

/// Experiment scale: `Smoke` for fast CI runs, `Paper` for the sizes the
/// figures in `EXPERIMENTS.md` were produced at, `Internet` for
/// routing-system scale (~80k ASes), and `InternetSmoke` for its CI-sized
/// ~20k cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~150-AS Internet, reduced instance counts; seconds end-to-end.
    Smoke,
    /// ~1500-AS Internet, paper-matching instance counts.
    Paper,
    /// ~80,000-AS Internet; instance counts cut to keep runs in minutes.
    Internet,
    /// ~20,000-AS Internet; the `Internet` tier shrunk for CI.
    InternetSmoke,
}

impl Scale {
    /// Builds the synthetic Internet used at this scale.
    #[must_use]
    pub fn internet(self, seed: u64) -> AsGraph {
        match self {
            Scale::Smoke => InternetConfig::small().seed(seed).build(),
            Scale::Paper => InternetConfig::medium().seed(seed).build(),
            Scale::Internet => InternetConfig::internet().seed(seed).build(),
            Scale::InternetSmoke => InternetConfig::internet_smoke().seed(seed).build(),
        }
    }

    /// Number of sampled tier-1 hijack instances (paper Figure 7: 80).
    #[must_use]
    pub fn tier1_instances(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Paper => 80,
            Scale::Internet => 6,
            Scale::InternetSmoke => 6,
        }
    }

    /// Number of random hijack instances (paper Figure 8: 27).
    #[must_use]
    pub fn random_instances(self) -> usize {
        match self {
            Scale::Smoke => 8,
            Scale::Paper => 27,
            Scale::Internet => 6,
            Scale::InternetSmoke => 6,
        }
    }

    /// Number of attacker/victim pairs for the detection evaluation
    /// (paper Section VI-C: 200).
    #[must_use]
    pub fn detection_pairs(self) -> usize {
        match self {
            Scale::Smoke => 15,
            Scale::Paper => 200,
            Scale::Internet => 12,
            Scale::InternetSmoke => 10,
        }
    }

    /// Monitor-count sweep for Figure 13.
    #[must_use]
    pub fn monitor_counts(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![5, 20, 60],
            Scale::Paper => vec![10, 30, 50, 70, 100, 150, 200, 300],
            Scale::Internet => vec![10, 50, 100, 200],
            Scale::InternetSmoke => vec![5, 20, 60],
        }
    }

    /// Monitors used for the Figure 14 latency experiment (paper: top 150).
    #[must_use]
    pub fn latency_monitors(self) -> usize {
        match self {
            Scale::Smoke => 30,
            Scale::Paper => 150,
            Scale::Internet => 100,
            Scale::InternetSmoke => 30,
        }
    }

    /// Number of prefixes in the Figure 5/6 corpus.
    #[must_use]
    pub fn corpus_prefixes(self) -> usize {
        match self {
            Scale::Smoke => 60,
            Scale::Paper => 400,
            Scale::Internet => 80,
            Scale::InternetSmoke => 40,
        }
    }

    /// Sampled attacker/victim pairs per cell of the defense-deployment
    /// grid (see [`defense`]). Smaller than the impact-figure instance
    /// counts because every pair is re-evaluated at every
    /// policy × strategy × fraction cell.
    #[must_use]
    pub fn defense_pairs(self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Paper => 8,
            Scale::Internet => 3,
            Scale::InternetSmoke => 3,
        }
    }

    /// Monitors contributing tables to the Figure 5/6 corpus.
    #[must_use]
    pub fn corpus_monitors(self) -> usize {
        match self {
            Scale::Smoke => 20,
            Scale::Paper => 45,
            Scale::Internet => 30,
            Scale::InternetSmoke => 20,
        }
    }

    /// Cap on the sources probed per scenario step for the longest-prefix-
    /// match capture fraction (`None` probes every AS). Capped at the
    /// Internet tiers, where 80k per-step walks would dominate wall time.
    #[must_use]
    pub fn scenario_capture_sources(self) -> Option<usize> {
        match self {
            Scale::Smoke | Scale::Paper => None,
            Scale::Internet => Some(2000),
            Scale::InternetSmoke => Some(500),
        }
    }

    /// Victim- and attacker-pool sizes for the Monte-Carlo impact
    /// estimator. The pools bound the exact-enumeration cross-validation
    /// (pool product cells) as well as the MC draw universe.
    #[must_use]
    pub fn estimator_pools(self) -> (usize, usize) {
        match self {
            Scale::Smoke => (10, 10),
            Scale::Paper => (25, 25),
            Scale::Internet => (40, 40),
            Scale::InternetSmoke => (20, 20),
        }
    }

    /// Monte-Carlo draws for the impact estimator (the cross-validation
    /// pins the exact mean inside the 95% CI at the Paper count).
    #[must_use]
    pub fn estimator_samples(self) -> usize {
        match self {
            Scale::Smoke => 120,
            Scale::Paper => 1000,
            Scale::Internet => 600,
            Scale::InternetSmoke => 200,
        }
    }

    /// Bootstrap resamples behind the estimator's confidence intervals.
    #[must_use]
    pub fn estimator_resamples(self) -> usize {
        match self {
            Scale::Smoke => 300,
            _ => 1000,
        }
    }

    /// Per-sample vantage-subset size for the estimator (`None` measures
    /// the full population; the Internet tiers subsample as Sermpezis et
    /// al. do with real vantage points).
    #[must_use]
    pub fn estimator_vantages(self) -> Option<usize> {
        match self {
            Scale::Smoke | Scale::Paper => None,
            Scale::Internet => Some(1000),
            Scale::InternetSmoke => Some(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build_internets() {
        let small = Scale::Smoke.internet(1);
        assert!(small.len() < 400);
        assert_eq!(Scale::Paper.tier1_instances(), 80);
        assert_eq!(Scale::Paper.random_instances(), 27);
        assert_eq!(Scale::Paper.detection_pairs(), 200);
        assert!(Scale::Paper.monitor_counts().contains(&150));
        assert_eq!(Scale::Paper.latency_monitors(), 150);
    }
}
