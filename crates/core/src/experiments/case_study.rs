//! The Facebook routing anomaly (paper Section III, Figure 1, Table I).
//!
//! Reproduces the March 22nd 2011 incident end-to-end: Facebook announces
//! `69.171.224.0/20` with five copies of AS32934; Korea Telecom strips two
//! of them; the 5-hop detour through China Telecom displaces AT&T's and
//! NTT's 7-hop direct routes, and the data-plane RTT from a US AT&T
//! customer jumps past 200 ms.

use aspp_attack::scenarios::{facebook_anomaly_spec, facebook_topology};
use aspp_attack::{run_experiment, HijackExperiment, HijackImpact};
use aspp_dataplane::{simulate_traceroute, Region, RegionMap, Traceroute};
use aspp_routing::RoutingEngine;
use aspp_types::{well_known, AsPath, Ipv4Prefix};

use crate::report::{pct, TextTable};

/// The reproduced case study.
#[derive(Clone, Debug)]
pub struct CaseStudy {
    /// The hijacked prefix (one of the two affected Facebook prefixes).
    pub prefix: Ipv4Prefix,
    /// AT&T's normal route: `7018 3356 32934 ×5`.
    pub normal_path_att: AsPath,
    /// AT&T's route during the anomaly: `7018 4134 9318 32934 ×3`.
    pub anomalous_path_att: AsPath,
    /// NTT's route during the anomaly: `2914 4134 9318 32934 ×3`.
    pub anomalous_path_ntt: AsPath,
    /// China Telecom's route: `4134 9318 32934 ×3`.
    pub anomalous_path_ct: AsPath,
    /// Traceroute over the normal path (all-US).
    pub normal_trace: Traceroute,
    /// Traceroute over the detour (Table I's shape).
    pub anomalous_trace: Traceroute,
    /// Control-plane impact of the interception.
    pub impact: HijackImpact,
}

/// Runs the case study. `seed` only affects traceroute jitter.
#[must_use]
pub fn run(seed: u64) -> CaseStudy {
    use well_known::*;
    let graph = facebook_topology();
    let engine = RoutingEngine::new(&graph);
    let spec = facebook_anomaly_spec();
    let outcome = engine.compute(&spec);

    let regions = {
        let mut map = RegionMap::new(Region::UsEast);
        map.assign(ATT, Region::UsEast)
            .assign(NTT, Region::UsEast)
            .assign(LEVEL3, Region::UsEast)
            .assign(CHINA_TELECOM, Region::China)
            .assign(KOREA_TELECOM, Region::Korea)
            .assign(FACEBOOK, Region::UsWest);
        map
    };

    let normal_path_att = outcome
        .clean_observed_path(ATT)
        .expect("AT&T reaches Facebook");
    let anomalous_path_att = outcome.observed_path(ATT).expect("attacked route");

    let impact = run_experiment(
        &graph,
        &HijackExperiment::new(FACEBOOK, KOREA_TELECOM)
            .padding(5)
            .keep(3),
    );

    CaseStudy {
        prefix: "69.171.224.0/20".parse().expect("valid prefix literal"),
        normal_trace: simulate_traceroute(&normal_path_att, &regions, seed),
        anomalous_trace: simulate_traceroute(&anomalous_path_att, &regions, seed),
        normal_path_att,
        anomalous_path_att,
        anomalous_path_ntt: outcome.observed_path(NTT).expect("NTT route"),
        anomalous_path_ct: outcome.observed_path(CHINA_TELECOM).expect("CT route"),
        impact,
    }
}

impl CaseStudy {
    /// Renders the Figure 1 route table and the Table I traceroute.
    #[must_use]
    pub fn render(&self) -> String {
        let mut routes = TextTable::new(["observer", "route (Figure 1)", "state"]);
        routes.row([
            "AT&T".to_owned(),
            self.normal_path_att.to_string(),
            "before".to_owned(),
        ]);
        routes.row([
            "AT&T".to_owned(),
            self.anomalous_path_att.to_string(),
            "anomaly".to_owned(),
        ]);
        routes.row([
            "NTT".to_owned(),
            self.anomalous_path_ntt.to_string(),
            "anomaly".to_owned(),
        ]);
        routes.row([
            "ChinaTel".to_owned(),
            self.anomalous_path_ct.to_string(),
            "anomaly".to_owned(),
        ]);
        format!(
            "# Facebook anomaly case study — prefix {}\n\n{routes}\n\
             pollution: before {}% -> after {}%\n\n\
             # Table I — traceroute during the anomaly\n{}\n\
             (normal route RTT: {:.0} ms; anomalous: {:.0} ms)\n",
            self.prefix,
            pct(self.impact.before_fraction),
            pct(self.impact.after_fraction),
            self.anomalous_trace,
            self.normal_trace.final_rtt_ms(),
            self.anomalous_trace.final_rtt_ms(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_match_the_paper_exactly() {
        let study = run(3);
        assert_eq!(
            study.normal_path_att.to_string(),
            "7018 3356 32934 32934 32934 32934 32934",
            "the 7-hop normal route with 5 origin copies"
        );
        assert_eq!(
            study.anomalous_path_att.to_string(),
            "7018 4134 9318 32934 32934 32934",
            "the 6-hop anomalous route with 3 origin copies"
        );
        assert_eq!(
            study.anomalous_path_ntt.to_string(),
            "2914 4134 9318 32934 32934 32934"
        );
        assert_eq!(
            study.anomalous_path_ct.to_string(),
            "4134 9318 32934 32934 32934"
        );
    }

    #[test]
    fn anomalous_route_is_shorter_but_physically_longer() {
        let study = run(4);
        assert!(study.anomalous_path_att.len() < study.normal_path_att.len());
        assert!(study.anomalous_path_att.unique_len() > study.normal_path_att.unique_len());
    }

    #[test]
    fn table1_delay_shape() {
        let study = run(5);
        // Cross-ocean detour at least doubles the RTT, and lands >150 ms.
        assert!(study.anomalous_trace.final_rtt_ms() > 2.0 * study.normal_trace.final_rtt_ms());
        assert!(study.anomalous_trace.final_rtt_ms() > 150.0);
        // Hops traverse AT&T -> China Telecom -> Korea -> Facebook in order.
        let seq = study.anomalous_trace.as_sequence();
        assert_eq!(
            seq,
            vec![
                well_known::ATT,
                well_known::CHINA_TELECOM,
                well_known::KOREA_TELECOM,
                well_known::FACEBOOK
            ]
        );
    }

    #[test]
    fn render_contains_key_artifacts() {
        let study = run(6);
        let text = study.render();
        assert!(text.contains("69.171.224.0/20"));
        assert!(text.contains("7018 4134 9318"));
        assert!(text.contains("Table I"));
        assert!(text.contains("AS4134"));
    }
}
