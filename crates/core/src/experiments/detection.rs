//! Detection-quality experiments — the paper's Figures 13 and 14.

use aspp_attack::sweep::random_pair_experiments;
use aspp_data::stats::Cdf;
use aspp_detect::eval::{accuracy_vs_monitors, polluted_fraction_before_detection, AccuracyPoint};
use aspp_detect::monitors::top_degree;
use aspp_detect::selection::{compare_selections, SelectionComparison};
use aspp_topology::AsGraph;

use super::Scale;
use crate::report::{render_series, TextTable};

/// Result of the Figure 13 sweep.
#[derive(Clone, Debug)]
pub struct AccuracyCurve {
    /// One point per monitor count, ascending.
    pub points: Vec<AccuracyPoint>,
}

impl AccuracyCurve {
    /// The accuracy at the largest monitor count.
    #[must_use]
    pub fn best_accuracy(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.accuracy)
    }

    /// Renders the curve with all three accuracy flavours.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "# of monitors",
            "% attacks detected",
            "% attributed to attacker",
            "% high-confidence",
            "attacks",
        ]);
        for p in &self.points {
            table.row([
                p.monitor_count.to_string(),
                format!("{:.1}", p.accuracy * 100.0),
                format!("{:.1}", p.accuracy_attributed * 100.0),
                format!("{:.1}", p.accuracy_high * 100.0),
                p.attacks.to_string(),
            ]);
        }
        format!("# Figure 13 — detection accuracy with increasing monitors\n{table}")
    }
}

/// Figure 13: detection accuracy vs number of top-degree monitors over
/// random attacker/victim pairs at λ = 3 (paper: 200 pairs; ≈92% at 70
/// monitors, >99% at 150).
#[must_use]
pub fn fig13(graph: &AsGraph, scale: Scale, seed: u64) -> AccuracyCurve {
    let exps = random_pair_experiments(graph, scale.detection_pairs(), 3, seed);
    let counts = scale.monitor_counts();
    AccuracyCurve {
        points: accuracy_vs_monitors(graph, &exps, &counts),
    }
}

/// Result of the Figure 14 experiment.
#[derive(Clone, Debug)]
pub struct DetectionLatency {
    /// Fraction of all ASes polluted before detection, one per detected
    /// attack.
    pub fractions: Cdf,
    /// Attacks that were never detected (excluded from the CDF).
    pub undetected: usize,
    /// Total effective attacks evaluated.
    pub total: usize,
}

impl DetectionLatency {
    /// Renders the CDF staircase.
    #[must_use]
    pub fn render(&self) -> String {
        let series = render_series(
            "Figure 14 — fraction of ASes polluted before detection",
            "frac_polluted_before_detection",
            "CDF",
            &self.fractions.points(),
        );
        format!(
            "{series}\n({} of {} effective attacks detected; median fraction {:.2})\n",
            self.total - self.undetected,
            self.total,
            self.fractions.quantile(0.5)
        )
    }
}

/// Figure 14: with the top-`scale.latency_monitors()` monitors, how much of
/// the Internet is already polluted when the alarm fires.
#[must_use]
pub fn fig14(graph: &AsGraph, scale: Scale, seed: u64) -> DetectionLatency {
    let exps = random_pair_experiments(graph, scale.detection_pairs(), 3, seed);
    let monitors = top_degree(graph, scale.latency_monitors());
    let mut fractions = Vec::new();
    let mut undetected = 0usize;
    let mut total = 0usize;
    for exp in &exps {
        // Skip infeasible/ineffective attacks the same way Figure 13 does.
        let engine = aspp_routing::RoutingEngine::new(graph);
        let outcome = engine.compute(&exp.to_spec());
        if !outcome.has_attack() || outcome.polluted_count() == 0 || outcome.changed_count() == 0 {
            continue;
        }
        total += 1;
        match polluted_fraction_before_detection(graph, exp, &monitors) {
            Some(f) => fractions.push(f),
            None => undetected += 1,
        }
    }
    DetectionLatency {
        fractions: Cdf::from_samples(fractions),
        undetected,
        total,
    }
}

/// The vantage-point-selection study (the paper's future work, Sections
/// V-B/VIII): train a greedy monitor set on one batch of simulated attacks
/// and compare it against same-budget top-degree and random monitor sets on
/// held-out attacks, across several budgets.
#[derive(Clone, Debug)]
pub struct SelectionStudy {
    /// One comparison per budget, ascending.
    pub comparisons: Vec<SelectionComparison>,
}

impl SelectionStudy {
    /// Renders the three strategies' accuracies per budget.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["monitor budget", "greedy %", "top-degree %", "random %"]);
        for c in &self.comparisons {
            table.row([
                c.budget.to_string(),
                format!("{:.1}", c.greedy * 100.0),
                format!("{:.1}", c.top_degree * 100.0),
                format!("{:.1}", c.random * 100.0),
            ]);
        }
        format!(
            "# Vantage-point selection (paper future work)
{table}"
        )
    }
}

/// Runs the selection study at the given scale.
#[must_use]
pub fn vantage_selection(graph: &AsGraph, scale: Scale, seed: u64) -> SelectionStudy {
    let (train_n, budgets): (usize, Vec<usize>) = match scale {
        Scale::Smoke => (12, vec![4, 10]),
        Scale::Paper => (40, vec![10, 30, 70]),
        Scale::Internet => (16, vec![10, 30]),
        Scale::InternetSmoke => (12, vec![4, 10]),
    };
    // One without-replacement draw split in half: training and held-out
    // batches share no (victim, attacker) pair, so the greedy monitor set is
    // never evaluated on an attack it was fitted to. (Two independent draws
    // — the old scheme — overlap with high probability on small graphs.)
    let mut pool = random_pair_experiments(graph, 2 * train_n, 3, seed);
    let held_out = pool.split_off(pool.len() / 2);
    let training = pool;
    SelectionStudy {
        comparisons: budgets
            .into_iter()
            .map(|b| compare_selections(graph, &training, &held_out, b, seed))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_monotone_in_monitors() {
        let g = Scale::Smoke.internet(55);
        let curve = fig13(&g, Scale::Smoke, 5);
        assert_eq!(curve.points.len(), Scale::Smoke.monitor_counts().len());
        assert!(curve
            .points
            .windows(2)
            .all(|w| w[1].accuracy >= w[0].accuracy - 1e-9));
        assert!(
            curve.best_accuracy() > 0.5,
            "best {}",
            curve.best_accuracy()
        );
        assert!(curve.render().contains("Figure 13"));
    }

    #[test]
    fn vantage_selection_study_runs() {
        let g = Scale::Smoke.internet(57);
        let study = vantage_selection(&g, Scale::Smoke, 7);
        assert_eq!(study.comparisons.len(), 2);
        for c in &study.comparisons {
            assert!((0.0..=1.0).contains(&c.greedy));
            assert_eq!(c.greedy_monitors.len(), c.budget.min(g.len()));
        }
        assert!(study.render().contains("greedy"));
    }

    #[test]
    fn fig14_fractions_in_unit_interval() {
        let g = Scale::Smoke.internet(56);
        let latency = fig14(&g, Scale::Smoke, 6);
        assert!(latency.total > 0);
        if let Some((lo, hi)) = latency.fractions.range() {
            assert!(lo >= 0.0 && hi <= 1.0);
        }
        assert!(latency.render().contains("Figure 14"));
    }
}
