//! Defense-deployment study (beyond the paper's evaluation): how fast
//! does interception success collapse as defenses roll out?
//!
//! The paper shows the ASPP strip evades every detector the 2012 Internet
//! ran. This study runs the modern counterfactual: deploy ROV, ASPA,
//! peerlock-lite, or first-AS enforcement at a growing fraction of ASes —
//! chosen at random, top-down by tier, or by degree — and replay the
//! paper's attack grid at every deployment level. The headline result is
//! *negative* for today's deployed defense: ROV's curve is perfectly flat
//! against the strip (the announcement's origin is genuine), while the
//! path-aware policies do bend the curve. See
//! [`aspp_attack::defense`] for the sweep machinery and
//! `aspp_routing::policy` for the policy semantics.

use aspp_attack::defense::{run_defense_sweep, DefensePoint, DeployStrategy};
use aspp_attack::sweep::random_pair_experiments;
use aspp_attack::{BatchRunner, ExportMode, HijackExperiment};
use aspp_routing::{AttackStrategy, PolicyKind};
use aspp_topology::AsGraph;

use super::Scale;
use crate::report::{pct, TextTable};

/// Configuration for the deployment study.
#[derive(Clone, Debug)]
pub struct DefenseConfig {
    /// Sampled attacker/victim pairs per grid cell.
    pub pairs: usize,
    /// Victim padding λ for the strip grid (the paper's Figure 7/8 default
    /// is 3).
    pub lambda: usize,
    /// Policies to sweep.
    pub kinds: Vec<PolicyKind>,
    /// Deployment strategies to sweep.
    pub strategies: Vec<DeployStrategy>,
    /// Adoption fractions (each indexes a nested prefix of the strategy's
    /// adoption order).
    pub fractions: Vec<f64>,
    /// Seed for pair sampling and random deployment order.
    pub seed: u64,
}

impl DefenseConfig {
    /// The default grid at `scale`: every policy, every strategy,
    /// fractions 0–100%, λ = 3.
    #[must_use]
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        DefenseConfig {
            pairs: scale.defense_pairs(),
            lambda: 3,
            kinds: PolicyKind::ALL.to_vec(),
            strategies: DeployStrategy::ALL.to_vec(),
            fractions: vec![0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            seed,
        }
    }
}

/// The deployment study's results: one curve family for the paper's strip
/// attack, one for the origin-hijack contrast.
#[derive(Clone, Debug)]
pub struct DefenseStudy {
    /// The configuration that produced the study.
    pub config: DefenseConfig,
    /// Grid points for the ASPP strip (keep 1, valley-free-violating
    /// exports — the paper's strongest variant). Ordered strategy-major,
    /// then policy, then fraction.
    pub strip: Vec<DefensePoint>,
    /// Grid points for the origin-hijack baseline under the same
    /// deployments — the contrast that shows ROV is not useless, just
    /// blind to this attack.
    pub origin_hijack: Vec<DefensePoint>,
}

impl DefenseStudy {
    /// The points of one strip curve: `(kind, strategy)` against every
    /// fraction, in the config's fraction order.
    #[must_use]
    pub fn strip_curve(&self, kind: PolicyKind, strategy: DeployStrategy) -> Vec<&DefensePoint> {
        self.strip
            .iter()
            .filter(|p| p.kind == kind && p.strategy == strategy)
            .collect()
    }

    /// Renders one table per strategy (rows = fractions, one interception
    /// success column per policy), for the strip grid and the
    /// origin-hijack contrast.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, points) in [
            ("ASPP strip, keep 1, violating exports", &self.strip),
            ("origin-hijack contrast", &self.origin_hijack),
        ] {
            for &strategy in &self.config.strategies {
                out.push_str(&format!(
                    "# Defense deployment — {label}, {strategy} adoption \
                     (λ={}, {} pairs)\n",
                    self.config.lambda, self.config.pairs
                ));
                let mut headers = vec!["deployed %".to_string(), "ASes".to_string()];
                headers.extend(self.config.kinds.iter().map(|k| format!("{k} after %")));
                let mut table = TextTable::new(headers);
                for &fraction in &self.config.fractions {
                    let row_points: Vec<&DefensePoint> = self
                        .config
                        .kinds
                        .iter()
                        .filter_map(|&kind| {
                            points.iter().find(|p| {
                                p.kind == kind && p.strategy == strategy && p.fraction == fraction
                            })
                        })
                        .collect();
                    let deployed = row_points.first().map_or(0, |p| p.deployed);
                    let mut cells = vec![pct(fraction), deployed.to_string()];
                    cells.extend(row_points.iter().map(|p| pct(p.mean_after)));
                    table.row(cells);
                }
                out.push_str(&table.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// Runs the deployment study with the default batch runner.
///
/// # Panics
///
/// Panics if the graph is too small to sample the configured pair count
/// (propagated from the routing engine).
#[must_use]
pub fn run(graph: &AsGraph, config: &DefenseConfig) -> DefenseStudy {
    run_with_runner(graph, config, &BatchRunner::new())
}

/// Runs the deployment study on an explicit batch handle (the
/// `aspp defense --serial` escape hatch passes
/// `BatchRunner::new().serial()`).
#[must_use]
pub fn run_with_runner(
    graph: &AsGraph,
    config: &DefenseConfig,
    runner: &BatchRunner,
) -> DefenseStudy {
    let _span = aspp_obs::trace::span("experiments.defense");
    let strip_exps: Vec<HijackExperiment> =
        random_pair_experiments(graph, config.pairs, config.lambda, config.seed)
            .into_iter()
            .map(|e| e.export_mode(ExportMode::ViolateValleyFree))
            .collect();
    let hijack_exps: Vec<HijackExperiment> = strip_exps
        .iter()
        .map(|e| e.strategy(AttackStrategy::OriginHijack))
        .collect();
    let strip = run_defense_sweep(
        graph,
        &strip_exps,
        &config.kinds,
        &config.strategies,
        &config.fractions,
        config.seed,
        runner,
    );
    let origin_hijack = run_defense_sweep(
        graph,
        &hijack_exps,
        &config.kinds,
        &config.strategies,
        &config.fractions,
        config.seed,
        runner,
    );
    DefenseStudy {
        config: config.clone(),
        strip,
        origin_hijack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> DefenseStudy {
        let graph = Scale::Smoke.internet(19);
        let config = DefenseConfig {
            pairs: 4,
            lambda: 5,
            kinds: vec![PolicyKind::Aspa, PolicyKind::Rov],
            strategies: vec![DeployStrategy::TopDegree],
            fractions: vec![0.0, 0.5, 1.0],
            seed: 2,
        };
        run(&graph, &config)
    }

    #[test]
    fn grid_is_complete_and_curves_behave() {
        let s = study();
        assert_eq!(s.strip.len(), 2 * 3);
        assert_eq!(s.origin_hijack.len(), 2 * 3);
        let aspa = s.strip_curve(PolicyKind::Aspa, DeployStrategy::TopDegree);
        assert_eq!(aspa.len(), 3);
        assert!(aspa
            .windows(2)
            .all(|w| w[1].mean_after <= w[0].mean_after + 1e-12));
        let rov = s.strip_curve(PolicyKind::Rov, DeployStrategy::TopDegree);
        assert!(
            (rov[0].mean_after - rov[2].mean_after).abs() < 1e-12,
            "ROV is blind to prepend stripping"
        );
        // The contrast: full ROV extinguishes the origin hijack.
        let hijack_rov: Vec<&DefensePoint> = s
            .origin_hijack
            .iter()
            .filter(|p| p.kind == PolicyKind::Rov)
            .collect();
        assert_eq!(hijack_rov.last().unwrap().mean_after, 0.0);
    }

    #[test]
    fn render_lists_every_strategy_and_policy() {
        let s = study();
        let text = s.render();
        assert!(text.contains("top-degree adoption"));
        assert!(text.contains("aspa after %"));
        assert!(text.contains("rov after %"));
        assert!(text.contains("origin-hijack contrast"));
    }

    #[test]
    fn default_config_covers_the_full_grid() {
        let c = DefenseConfig::at_scale(Scale::Smoke, 1);
        assert_eq!(c.kinds.len(), 4);
        assert_eq!(c.strategies.len(), 3);
        assert!(c.fractions.first() == Some(&0.0) && c.fractions.last() == Some(&1.0));
    }
}
