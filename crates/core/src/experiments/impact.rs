//! Attack-impact experiments — the paper's Figures 7 through 12.
//!
//! Every driver here runs on the batch equilibrium engine
//! (`aspp_routing::batch`, via [`run_ranked`] and [`prepend_sweep`]): cells
//! sharing a victim form one steal unit, so each victim's clean pass is
//! computed once per figure and the λ/strategy cells ride the warm
//! workspace. Results are bit-identical to the serial per-cell path.

use aspp_attack::sweep::{
    best_connected_stub, prepend_sweep, random_pair_experiments, run_ranked, tier1_pair_experiments,
};
use aspp_attack::{ExportMode, HijackImpact};
use aspp_topology::tier::{customer_cone, TierMap};
use aspp_topology::AsGraph;
use aspp_types::Asn;

use super::Scale;
use crate::report::{pct, TextTable};

/// A ranked batch of hijack instances (Figures 7 and 8): instances sorted
/// by descending pollution, each with its before-hijack baseline.
#[derive(Clone, Debug)]
pub struct RankedImpacts {
    /// Figure label, e.g. `"Figure 7"`.
    pub label: &'static str,
    /// Instances, descending by after-hijack pollution.
    pub impacts: Vec<HijackImpact>,
}

impl RankedImpacts {
    /// Mean after-hijack pollution across instances.
    #[must_use]
    pub fn mean_after(&self) -> f64 {
        if self.impacts.is_empty() {
            return 0.0;
        }
        self.impacts.iter().map(|i| i.after_fraction).sum::<f64>() / self.impacts.len() as f64
    }

    /// Renders the ranked series exactly as the figures plot it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["instance", "after %", "before %", "victim", "attacker"]);
        for (i, impact) in self.impacts.iter().enumerate() {
            table.row([
                i.to_string(),
                pct(impact.after_fraction),
                pct(impact.before_fraction),
                impact.experiment.victim().to_string(),
                impact.experiment.attacker().to_string(),
            ]);
        }
        format!(
            "# {} — mean after-hijack pollution {:.1}%\n{table}",
            self.label,
            self.mean_after() * 100.0
        )
    }
}

/// Figure 7: tier-1 attacker vs tier-1 victim instances at λ = 3.
#[must_use]
pub fn fig7(graph: &AsGraph, scale: Scale, seed: u64) -> RankedImpacts {
    let exps = tier1_pair_experiments(graph, scale.tier1_instances(), 3, seed);
    RankedImpacts {
        label: "Figure 7 — polluted ASes in attacks between tier-1 ASes (λ=3)",
        impacts: run_ranked(graph, &exps),
    }
}

/// Figure 8: randomly sampled attacker/victim pairs at λ = 3.
#[must_use]
pub fn fig8(graph: &AsGraph, scale: Scale, seed: u64) -> RankedImpacts {
    let exps = random_pair_experiments(graph, scale.random_instances(), 3, seed);
    RankedImpacts {
        label: "Figure 8 — polluted ASes in attacks between random ASes (λ=3)",
        impacts: run_ranked(graph, &exps),
    }
}

/// A λ sweep for one victim/attacker pair, possibly under two export modes
/// (Figures 9–12).
#[derive(Clone, Debug)]
pub struct PrependSweep {
    /// Figure label.
    pub label: &'static str,
    /// The victim.
    pub victim: Asn,
    /// The attacker.
    pub attacker: Asn,
    /// λ sweep under valley-free-compliant exports.
    pub compliant: Vec<HijackImpact>,
    /// λ sweep with the attacker violating valley-free exports (only for
    /// Figures 11/12, `None` otherwise).
    pub violating: Option<Vec<HijackImpact>>,
}

impl PrependSweep {
    /// Renders the λ series (one or two curves).
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = if self.violating.is_some() {
            TextTable::new([
                "prepending ASNs (λ)",
                "follow valley-free %",
                "violate routing policy %",
                "before %",
            ])
        } else {
            TextTable::new(["prepending ASNs (λ)", "after %", "before %", ""])
        };
        for (i, c) in self.compliant.iter().enumerate() {
            let violating = self
                .violating
                .as_ref()
                .and_then(|v| v.get(i))
                .map(|v| pct(v.after_fraction));
            match violating {
                Some(v) => table.row([
                    c.experiment.padding_level().to_string(),
                    pct(c.after_fraction),
                    v,
                    pct(c.before_fraction),
                ]),
                None => table.row([
                    c.experiment.padding_level().to_string(),
                    pct(c.after_fraction),
                    pct(c.before_fraction),
                    String::new(),
                ]),
            };
        }
        format!(
            "# {} (AS{} hijacks AS{})\n{table}",
            self.label, self.attacker, self.victim
        )
    }
}

const LAMBDA_RANGE: std::ops::RangeInclusive<usize> = 1..=8;

/// Figure 9: a tier-1 attacker hijacks a tier-1 victim (the Sprint→AT&T
/// analogue), λ ∈ 1..=8.
#[must_use]
pub fn fig9(graph: &AsGraph) -> PrependSweep {
    let tiers = TierMap::classify(graph);
    let mut t1: Vec<Asn> = tiers.tier1().collect();
    t1.sort();
    let (attacker, victim) = (t1[0], t1[1]);
    PrependSweep {
        label: "Figure 9 — pollution vs prepended ASNs, tier-1 hijacks tier-1",
        victim,
        attacker,
        compliant: prepend_sweep(graph, victim, attacker, LAMBDA_RANGE, ExportMode::Compliant),
        violating: None,
    }
}

/// Figure 10: a tier-1 attacker hijacks a low-tier victim (the
/// AT&T→Facebook analogue): a multi-homed edge AS with no peering of its
/// own, chosen inside the attacker's customer cone — AT&T was (indirectly)
/// transit for Facebook, which is what lets the stripped route legally
/// propagate everywhere and pollute ">99%" in the paper.
#[must_use]
pub fn fig10(graph: &AsGraph) -> PrependSweep {
    let tiers = TierMap::classify(graph);
    let attacker = tiers.tier1().min().expect("graph has a tier-1 core");
    let cone = customer_cone(graph, attacker);
    let victim = graph
        .asns()
        .filter(|&a| {
            a != attacker
                && cone.contains(&a)
                && tiers.is_stub(graph, a)
                && graph.peers(a).next().is_none()
                && graph.providers(a).count() >= 2
        })
        .min()
        .expect("graph has multi-homed stubs in the core's cone");
    PrependSweep {
        label: "Figure 10 — pollution vs prepended ASNs, tier-1 hijacks tier-3",
        victim,
        attacker,
        compliant: prepend_sweep(graph, victim, attacker, LAMBDA_RANGE, ExportMode::Compliant),
        violating: None,
    }
}

/// Figure 11: a small but well-connected attacker (the Facebook analogue)
/// hijacks a tier-1 victim (the NTT analogue), with and without the
/// valley-free export rule.
///
/// The paper traces its surprising 38% valley-free pollution to a structural
/// accident: "AS2914 is a sibling of popular CDN Limelight, which happens to
/// be a customer of Facebook", so the attacker legitimately holds a
/// *customer-learned* route to the tier-1 victim and may export the stripped
/// route everywhere. We embed exactly that Limelight-shaped chain — a fresh
/// edge AS that is a sibling of the victim and a customer of the attacker —
/// before running the sweep.
#[must_use]
pub fn fig11(graph: &AsGraph) -> PrependSweep {
    let tiers = TierMap::classify(graph);
    let victim = tiers.tier1().min().expect("graph has a tier-1 core");
    let attacker = best_connected_stub(graph).expect("graph has stubs");

    // The Limelight analogue: sibling of the victim, customer of the attacker.
    let mut augmented = graph.clone();
    let limelight = Asn(99_999);
    augmented
        .add_sibling(victim, limelight)
        .expect("fresh sibling link");
    augmented
        .add_provider_customer(attacker, limelight)
        .expect("fresh customer link");
    augmented.sort_neighbors();

    PrependSweep {
        label: "Figure 11 — small well-peered AS hijacks a tier-1",
        victim,
        attacker,
        // "Follow valley-free rule": legal exports only — the pollution is
        // entirely enabled by the Limelight-shaped customer chain.
        compliant: prepend_sweep(
            &augmented,
            victim,
            attacker,
            LAMBDA_RANGE,
            ExportMode::Compliant,
        ),
        // "Violate routing policy": the attacker pushes the stripped route
        // to its providers regardless of how it was learned — no special
        // chain needed, so this runs on the unmodified topology.
        violating: Some(prepend_sweep(
            graph,
            victim,
            attacker,
            LAMBDA_RANGE,
            ExportMode::ViolateValleyFree,
        )),
    }
}

/// Figure 12: a small attacker hijacks a small victim, with and without the
/// valley-free export rule (the AS30209→AS12734 analogue).
#[must_use]
pub fn fig12(graph: &AsGraph) -> PrependSweep {
    let tiers = TierMap::classify(graph);
    let mut stubs: Vec<Asn> = graph
        .asns()
        .filter(|&a| {
            tiers.is_stub(graph, a)
                && graph.peers(a).next().is_none()
                && graph.providers(a).count() >= 2
        })
        .collect();
    stubs.sort();
    let victim = stubs[0];
    // An attacker with customers (so the compliant curve is non-trivial)
    // and at least two providers — a single-homed attacker cannot spread
    // upward at all because its only provider sees its own ASN on the
    // claimed path and discards the announcement.
    let attacker = graph
        .asns()
        .filter(|&a| a != victim && tiers.tier_of(a).unwrap_or(0) >= 3)
        .find(|&a| graph.customers(a).next().is_some() && graph.providers(a).count() >= 2)
        .unwrap_or(stubs[1]);
    PrependSweep {
        label: "Figure 12 — small AS hijacks small AS",
        victim,
        attacker,
        compliant: prepend_sweep(graph, victim, attacker, LAMBDA_RANGE, ExportMode::Compliant),
        violating: Some(prepend_sweep(
            graph,
            victim,
            attacker,
            LAMBDA_RANGE,
            ExportMode::ViolateValleyFree,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> AsGraph {
        Scale::Smoke.internet(101)
    }

    #[test]
    fn fig7_shape() {
        let g = graph();
        let result = fig7(&g, Scale::Smoke, 1);
        assert_eq!(result.impacts.len(), Scale::Smoke.tier1_instances());
        // Ranked descending.
        assert!(result
            .impacts
            .windows(2)
            .all(|w| w[0].after_fraction >= w[1].after_fraction));
        // Tier-1 on tier-1 attacks pollute substantially on average.
        assert!(result.mean_after() > 0.1, "mean {}", result.mean_after());
        assert!(result.render().contains("Figure 7"));
    }

    #[test]
    fn fig8_less_effective_than_fig7() {
        let g = graph();
        let f7 = fig7(&g, Scale::Smoke, 2);
        let f8 = fig8(&g, Scale::Smoke, 2);
        assert!(
            f8.mean_after() < f7.mean_after(),
            "random pairs ({}) should pollute less than tier-1 pairs ({})",
            f8.mean_after(),
            f7.mean_after()
        );
    }

    #[test]
    fn fig9_grows_then_plateaus() {
        let g = graph();
        let sweep = fig9(&g);
        let after: Vec<f64> = sweep.compliant.iter().map(|i| i.after_fraction).collect();
        assert_eq!(after.len(), 8);
        assert!(after[7] > after[0], "padding increases pollution");
        assert!((after[7] - after[6]).abs() < 0.05, "plateau at high λ");
        assert!(sweep.render().contains("Figure 9"));
    }

    #[test]
    fn fig10_high_tier_attacker_dominates() {
        let g = graph();
        let sweep = fig10(&g);
        let first = sweep.compliant.first().unwrap().after_fraction;
        let last = sweep.compliant.last().unwrap().after_fraction;
        // Paper: strong growth, most of the Internet polluted at high λ.
        // (Smoke-scale cones are proportionally larger, capping the
        // absolute number below the paper's >99%; see EXPERIMENTS.md.)
        assert!(last > 0.25, "tier-1 vs stub pollution at λ=8: {last}");
        assert!(last > first + 0.2, "growth expected: {first} -> {last}");
    }

    #[test]
    fn fig11_chain_makes_compliant_attack_devastating() {
        let g = graph();
        let sweep = fig11(&g);
        // The paper's surprise: *valley-free-compliant* pollution is large
        // thanks to the sibling/customer chain.
        let c8 = sweep.compliant.last().unwrap().after_fraction;
        assert!(c8 > 0.5, "compliant pollution at λ=8: {c8}");
        // The policy-violating attacker reaches similar scale without any
        // special structure.
        let violating = sweep.violating.as_ref().unwrap();
        let v8 = violating.last().unwrap().after_fraction;
        assert!(v8 > 0.5, "violating pollution at λ=8: {v8}");
        // And both grow with λ.
        assert!(
            violating.last().unwrap().after_fraction > violating.first().unwrap().after_fraction
        );
        assert!(sweep.render().contains("violate"));
    }

    #[test]
    fn fig12_compliant_small_attacker_is_weak() {
        let g = graph();
        let sweep = fig12(&g);
        let violating = sweep.violating.as_ref().unwrap();
        let c8 = sweep.compliant.last().unwrap().after_fraction;
        let v8 = violating.last().unwrap().after_fraction;
        assert!(
            v8 >= c8,
            "violating ({v8}) at least as strong as compliant ({c8})"
        );
        assert!(v8 > 0.3, "violating attacker gains real traction: {v8}");
        assert!(c8 < 0.2, "compliant small attacker stays confined: {c8}");
    }
}
