//! Extension experiments beyond the paper's evaluation section: the
//! stealth comparison against baseline hijacks (motivating Sections I–II)
//! and the reactive mitigations sketched by its future-work agenda.

use aspp_attack::mitigation::{deaggregation, padding_reduction, MitigationReport};
use aspp_attack::HijackExperiment;
use aspp_detect::eval::visibility_matrix;
use aspp_detect::monitors::top_degree;
use aspp_routing::AttackStrategy;
use aspp_topology::tier::TierMap;
use aspp_topology::AsGraph;
use aspp_types::{Asn, Ipv4Prefix};

use crate::report::{pct, TextTable};

/// One row of the stealth matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StealthRow {
    /// The attack that was run.
    pub strategy: AttackStrategy,
    /// PHAS-style MOAS detection fired.
    pub moas: bool,
    /// Topology link-anomaly detection fired.
    pub link_anomaly: bool,
    /// The paper's Figure 4 detector fired.
    pub aspp_detector: bool,
}

/// The stealth comparison: the same attacker runs all three hijack
/// strategies against the same victim; three detector families watch.
#[derive(Clone, Debug)]
pub struct StealthStudy {
    /// The victim AS.
    pub victim: Asn,
    /// The attacker AS.
    pub attacker: Asn,
    /// One row per strategy.
    pub rows: Vec<StealthRow>,
}

impl StealthStudy {
    /// Renders the matrix.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["attack", "MOAS", "link-anomaly", "ASPP detector"]);
        for row in &self.rows {
            let name = match row.strategy {
                AttackStrategy::StripPadding { .. } => "ASPP strip (this paper)",
                AttackStrategy::StripAllPadding => "ASPP strip-all (generalized)",
                AttackStrategy::ForgeDirect => "forged adjacency (Ballani)",
                AttackStrategy::OriginHijack => "origin hijack (MOAS)",
                AttackStrategy::PoisonPath { .. } => "path poisoning (Smith)",
            };
            let mark = |b: bool| if b { "ALARM" } else { "-" };
            table.row([
                name,
                mark(row.moas),
                mark(row.link_anomaly),
                mark(row.aspp_detector),
            ]);
        }
        format!(
            "# Stealth comparison — AS{} attacks AS{}\n{table}",
            self.attacker, self.victim
        )
    }

    /// The headline claim: only the ASPP strip evades both legacy detectors.
    #[must_use]
    pub fn aspp_is_stealthiest(&self) -> bool {
        self.rows.iter().all(|row| match row.strategy {
            AttackStrategy::StripPadding { .. } | AttackStrategy::StripAllPadding => {
                !row.moas && !row.link_anomaly
            }
            AttackStrategy::ForgeDirect => row.link_anomaly,
            AttackStrategy::OriginHijack => row.moas,
            // Poisoning forges a link, so the link monitor may or may not
            // catch it; stealth is not claimed either way.
            AttackStrategy::PoisonPath { .. } => true,
        })
    }
}

/// Runs the stealth comparison on `graph` with a transit attacker.
#[must_use]
pub fn stealth(graph: &AsGraph, seed: u64) -> StealthStudy {
    let tiers = TierMap::classify(graph);
    let victim = graph
        .asns()
        .find(|&a| tiers.is_stub(graph, a) && graph.providers(a).count() >= 2)
        .expect("graph has multi-homed stubs");
    // The attacker must not actually neighbor the victim, otherwise the
    // "forged" [M V] adjacency is a real link and the baseline comparison
    // degenerates.
    let attacker = graph
        .asns()
        .find(|&a| {
            tiers.tier_of(a) == Some(2)
                && graph.customers(a).count() >= 2
                && graph.relationship(a, victim).is_none()
        })
        .expect("graph has tier-2 transit away from the victim");
    let monitors = top_degree(graph, (graph.len() / 4).max(10));
    let _ = seed; // placement is deterministic; the seed names the topology
    let rows = visibility_matrix(graph, victim, attacker, 4, &monitors)
        .into_iter()
        .map(|(strategy, report)| StealthRow {
            strategy,
            moas: report.moas,
            link_anomaly: report.link_anomaly,
            aspp_detector: report.aspp,
        })
        .collect();
    StealthStudy {
        victim,
        attacker,
        rows,
    }
}

/// The reactive-mitigation study: attack, then defend two ways.
#[derive(Clone, Debug)]
pub struct MitigationStudy {
    /// The attack that was mitigated.
    pub experiment: HijackExperiment,
    /// Falling back to λ = 1.
    pub padding_reduction: MitigationReport,
    /// Announcing unpadded more-specifics.
    pub deaggregation: MitigationReport,
}

impl MitigationStudy {
    /// Renders the before/after table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "defense",
            "polluted before %",
            "polluted after %",
            "relief %",
        ]);
        for (name, report) in [
            ("padding reduction (λ→1)", &self.padding_reduction),
            ("deaggregation (/x+1 specifics)", &self.deaggregation),
        ] {
            table.row([
                name.to_owned(),
                pct(report.polluted_before),
                pct(report.polluted_after),
                pct(report.relief()),
            ]);
        }
        format!(
            "# Reactive mitigation — AS{} intercepts AS{} (λ={})\n{table}",
            self.experiment.attacker(),
            self.experiment.victim(),
            self.experiment.padding_level()
        )
    }
}

/// Runs both mitigations against a strong tier-1 interception.
#[must_use]
pub fn mitigations(graph: &AsGraph) -> MitigationStudy {
    let tiers = TierMap::classify(graph);
    let attacker = tiers.tier1().min().expect("graph has a tier-1 core");
    let victim = graph
        .asns()
        .find(|&a| tiers.is_stub(graph, a) && graph.providers(a).count() >= 2)
        .expect("graph has multi-homed stubs");
    let exp = HijackExperiment::new(victim, attacker).padding(6);
    let prefix: Ipv4Prefix = "69.171.224.0/20".parse().expect("literal prefix");
    MitigationStudy {
        experiment: exp,
        padding_reduction: padding_reduction(graph, &exp, 1),
        deaggregation: deaggregation(graph, &exp, prefix).expect("/20 splits"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn stealth_reproduces_the_visibility_claims() {
        let g = Scale::Smoke.internet(91);
        let study = stealth(&g, 91);
        assert_eq!(study.rows.len(), 3);
        assert!(study.aspp_is_stealthiest(), "{:#?}", study.rows);
        // And the paper's detector catches its own attack.
        let aspp_row = study
            .rows
            .iter()
            .find(|r| matches!(r.strategy, AttackStrategy::StripPadding { .. }))
            .unwrap();
        assert!(aspp_row.aspp_detector);
        assert!(study.render().contains("ASPP strip"));
    }

    #[test]
    fn mitigations_provide_relief() {
        let g = Scale::Smoke.internet(92);
        let study = mitigations(&g);
        assert!(study.padding_reduction.polluted_before > 0.1);
        assert!(study.padding_reduction.relief() > 0.2);
        assert!(study.deaggregation.relief() > 0.5);
        assert!(study.render().contains("deaggregation"));
    }
}
