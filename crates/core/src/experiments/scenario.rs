//! Drivers behind `aspp scenario` and `aspp estimate`: the canonical
//! multi-actor timeline and the scale-tuned Monte-Carlo estimator runs.
//!
//! The canonical timeline walks the whole attack family the subsystem
//! models, on one victim:
//!
//! | t | move |
//! |---|------|
//! | 0 | a tier-1 attacker launches the paper's ASPP strip |
//! | 1 | the victim escalates its padding λ (mitigation attempt) |
//! | 2 | a second attacker competes with a subprefix hijack |
//! | 3 | the first attacker switches to path poisoning, steering around its competitor |
//! | 4 | the competitor abandons the subprefix and forces a MOAS origin conflict |
//!
//! Each step is a full per-prefix equilibrium batch; the run reports
//! pollution, data-plane interception, longest-prefix-match capture,
//! detector alarms, and inter-step churn (see [`aspp_scenario::timeline`]).

use super::Scale;
use aspp_attack::sweep::{best_connected_stub, representative_of_tier};
use aspp_routing::{AttackStrategy, BatchRunner, ExportMode};
use aspp_scenario::estimate::{estimate_with, exact_enumeration, ExactEnumeration};
use aspp_scenario::{Action, Estimate, EstimatorConfig, Scenario, ScenarioRun};
use aspp_topology::AsGraph;
use aspp_types::{Asn, Ipv4Prefix};

/// The fixed documentation prefix the canonical scenario announces.
#[must_use]
pub fn canonical_prefix() -> Ipv4Prefix {
    "203.0.0.0/16".parse().expect("static prefix parses")
}

/// The canonical actors: a well-connected stub victim, a tier-1 primary
/// attacker, and a distinct competitor from the next tier down.
#[must_use]
pub fn canonical_actors(graph: &AsGraph) -> (Asn, Asn, Asn) {
    let victim = best_connected_stub(graph).expect("generated graphs have stubs");
    let primary = representative_of_tier(graph, 1).expect("generated graphs have a tier 1");
    let competitor = representative_of_tier(graph, 2)
        .filter(|&c| c != primary && c != victim)
        .or_else(|| {
            graph
                .asns_by_degree()
                .into_iter()
                .find(|&a| a != primary && a != victim)
        })
        .expect("graph has at least three ASes");
    (victim, primary, competitor)
}

/// Builds the canonical five-step timeline on `graph` at `scale`.
#[must_use]
pub fn canonical_timeline(graph: &AsGraph, scale: Scale, seed: u64) -> Scenario {
    let (victim, primary, competitor) = canonical_actors(graph);
    Scenario::new(victim, canonical_prefix())
        .base_lambda(5)
        .monitors(scale.latency_monitors().min(60))
        .capture_sources(scale.scenario_capture_sources())
        .seed(seed)
        .at(0, Action::attack(primary))
        .at(1, Action::Escalate { lambda: 8 })
        .at(
            2,
            Action::SubprefixHijack {
                attacker: competitor,
            },
        )
        .at(
            3,
            Action::Attack {
                attacker: primary,
                strategy: AttackStrategy::PoisonPath {
                    poisoned: competitor,
                },
                mode: ExportMode::Compliant,
            },
        )
        .at(
            4,
            Action::WithdrawHijack {
                attacker: competitor,
            },
        )
        .at(
            4,
            Action::Attack {
                attacker: competitor,
                strategy: AttackStrategy::OriginHijack,
                mode: ExportMode::Compliant,
            },
        )
}

/// Runs the canonical timeline through `runner`.
#[must_use]
pub fn run_with_runner(
    graph: &AsGraph,
    scale: Scale,
    seed: u64,
    runner: &BatchRunner,
) -> ScenarioRun {
    let _span = aspp_obs::trace::span("experiments.scenario");
    canonical_timeline(graph, scale, seed).run_with(graph, runner)
}

/// The estimator configuration the given scale runs at.
#[must_use]
pub fn estimator_config(scale: Scale, seed: u64) -> EstimatorConfig {
    let (victims, attackers) = scale.estimator_pools();
    EstimatorConfig {
        victims,
        attackers,
        samples: scale.estimator_samples(),
        resamples: scale.estimator_resamples(),
        vantages: scale.estimator_vantages(),
        lambda: 5,
        strategy: AttackStrategy::StripPadding { keep: 1 },
        mode: ExportMode::Compliant,
        seed,
    }
}

/// Runs the Monte-Carlo estimator through `runner` at `scale`.
#[must_use]
pub fn estimate_with_runner(
    graph: &AsGraph,
    scale: Scale,
    seed: u64,
    runner: &BatchRunner,
) -> Estimate {
    let _span = aspp_obs::trace::span("experiments.estimate");
    estimate_with(graph, &estimator_config(scale, seed), runner)
}

/// Cross-validates the estimator against exact enumeration over the same
/// pools: returns the estimate, the ground truth, and whether the exact
/// mean pollution lies inside the 95% bootstrap CI.
#[must_use]
pub fn cross_validate(
    graph: &AsGraph,
    config: &EstimatorConfig,
) -> (Estimate, ExactEnumeration, bool) {
    let est = estimate_with(graph, config, &BatchRunner::new());
    let exact = exact_enumeration(graph, config);
    let within =
        est.pollution_ci.0 <= exact.mean_pollution && exact.mean_pollution <= est.pollution_ci.1;
    (est, exact, within)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_timeline_covers_the_attack_family() {
        let graph = Scale::Smoke.internet(17);
        let scenario = canonical_timeline(&graph, Scale::Smoke, 17);
        assert_eq!(scenario.times(), vec![0, 1, 2, 3, 4]);
        let run = scenario.run(&graph);
        assert_eq!(run.steps.len(), 5);
        // t2: the subprefix hijacker captures while the strip only transits.
        assert!(run.steps[2].captured > 0.5, "{}", run.steps[2].captured);
        // t4: MOAS blackholes whatever it pollutes; the subprefix is gone.
        assert_eq!(run.steps[4].captured, 0.0);
        let final_state = &run.steps[4].state;
        assert!(matches!(
            final_state.attacker,
            Some((_, AttackStrategy::OriginHijack, _))
        ));
        assert!(final_state.hijackers.is_empty());
    }

    #[test]
    fn smoke_cross_validation_brackets_the_exact_mean() {
        let graph = Scale::Smoke.internet(13);
        let config = estimator_config(Scale::Smoke, 13);
        let (est, exact, within) = cross_validate(&graph, &config);
        assert!(
            within,
            "exact {} outside CI [{}, {}]",
            exact.mean_pollution, est.pollution_ci.0, est.pollution_ci.1
        );
    }
}
