//! Plain-text rendering of experiment results: aligned tables and simple
//! `x,y` series blocks, so each bench can print exactly the rows/series the
//! paper's tables and figures report.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use aspp_core::report::TextTable;
///
/// let mut t = TextTable::new(["λ", "after %", "before %"]);
/// t.row(["1", "30.0", "5.2"]);
/// t.row(["2", "80.1", "5.2"]);
/// let s = t.to_string();
/// assert!(s.contains("after %"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extras are dropped.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (headers first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cell, width = widths[i]);
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.305` →
/// `"30.5"`.
#[must_use]
pub fn pct(fraction: f64) -> String {
    // `+ 0.0` normalizes IEEE negative zero so we never print "-0.0".
    format!("{:.1}", fraction * 100.0 + 0.0)
}

/// Renders an `(x, y)` series as a titled two-column block, the text
/// analogue of one curve in a paper figure.
#[must_use]
pub fn render_series(title: &str, xlabel: &str, ylabel: &str, points: &[(f64, f64)]) -> String {
    let mut table = TextTable::new([xlabel, ylabel]);
    for &(x, y) in points {
        table.row([format!("{x:.4}"), format!("{y:.4}")]);
    }
    format!("# {title}\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_separator() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["xxxxxx", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with('-'));
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn row_padding_and_truncation() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
        t.row(["1", "2", "3-dropped"]);
        assert_eq!(t.len(), 2);
        let s = t.to_csv();
        assert!(s.contains("only-one,"));
        assert!(!s.contains("dropped"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.305), "30.5");
        assert_eq!(pct(1.0), "100.0");
        assert_eq!(pct(0.0), "0.0");
    }

    #[test]
    fn series_block() {
        let s = render_series("Figure 9", "lambda", "polluted", &[(1.0, 0.3), (2.0, 0.8)]);
        assert!(s.starts_with("# Figure 9"));
        assert!(s.contains("1.0000"));
        assert!(s.contains("0.8000"));
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(["h"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains('h'));
    }
}
