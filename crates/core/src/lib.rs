//! Facade and experiment harness for the ICDCS 2012 ASPP-interception
//! reproduction.
//!
//! This crate re-exports the whole workspace API and adds:
//!
//! * [`experiments`] — one typed entry point per table/figure in the paper's
//!   evaluation (Table I, Figures 1 and 5–14), each returning a structured
//!   result that renders the same rows/series the paper reports;
//! * [`report`] — the plain-text table/series rendering those entry points
//!   (and the benches) use.
//!
//! # Quickstart
//!
//! ```
//! use aspp_core::experiments::{case_study, Scale};
//!
//! // Reproduce the Facebook anomaly (paper Section III, Figure 1, Table I).
//! let study = case_study::run(1);
//! assert_eq!(
//!     study.anomalous_path_att.to_string(),
//!     "7018 4134 9318 32934 32934 32934"
//! );
//! assert!(study.anomalous_trace.final_rtt_ms() > study.normal_trace.final_rtt_ms());
//! // And a smoke-scale figure run:
//! let _ = Scale::Smoke.internet(7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use aspp_attack as attack;
pub use aspp_data as data;
pub use aspp_dataplane as dataplane;
pub use aspp_detect as detect;
pub use aspp_feed as feed;
pub use aspp_obs as obs;
pub use aspp_routing as routing;
pub use aspp_scenario as scenario;
pub use aspp_topology as topology;
pub use aspp_types as types;

/// Convenience re-exports of the most used items.
pub mod prelude {
    pub use aspp_attack::{
        defense, run_experiment, run_experiment_with, run_experiments_batch,
        run_experiments_parallel, run_experiments_with_runner, scenarios, sweep, BatchRunner,
        DefensePoint, DeployStrategy, ExportMode, HijackExperiment, HijackImpact, RouteWorkspace,
    };
    pub use aspp_data::{measure, stats::Cdf, Corpus, CorpusConfig};
    pub use aspp_dataplane::{forwarding, simulate_traceroute, Region, RegionMap, Traceroute};
    pub use aspp_detect::{
        baseline, eval as detect_eval, monitors, realtime, selection, Alarm, Confidence, Detector,
        RouteView,
    };
    pub use aspp_feed::{FeedConfig, FeedReport, ReplayConfig, SyntheticFeed};
    pub use aspp_obs::{MetricsSnapshot, RunManifest, TopologyInfo};
    pub use aspp_routing::{
        bgp, AttackStrategy, AttackerModel, AuditReport, AuditViolation, DefensePolicy,
        DeployedPolicy, DeploymentMap, DestinationSpec, ExportMode as RoutingExportMode, NoDefense,
        OutcomeAudit, PolicyKind, PrependConfig, PrependingPolicy, RouteTable, RoutingEngine,
        RoutingOutcome, TieBreak,
    };
    pub use aspp_scenario::{
        estimate as mc_estimate, timeline, Action, Estimate, EstimatorConfig, Scenario,
        ScenarioRun, StepReport,
    };
    pub use aspp_topology::{gen::InternetConfig, infer, metrics, tier::TierMap, AsGraph};
    pub use aspp_types::{well_known, Announcement, AsPath, Asn, Ipv4Prefix, Relationship};
}
