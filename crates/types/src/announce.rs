//! BGP announcements.

use core::fmt;

use crate::{AsPath, Asn, Ipv4Prefix};

/// A BGP route announcement: a destination prefix together with the AS path
/// over which it was learned.
///
/// This is the unit exchanged between simulated ASes, recorded in the
/// MRT-like corpus format, and inspected by the detection algorithm.
///
/// # Example
///
/// ```
/// use aspp_types::{Announcement, AsPath, Asn, Ipv4Prefix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ann = Announcement::new(
///     "69.171.224.0/20".parse::<Ipv4Prefix>()?,
///     "4134 9318 32934 32934 32934".parse::<AsPath>()?,
/// );
/// assert_eq!(ann.origin(), Some(Asn(32934)));
/// assert_eq!(ann.to_string(), "69.171.224.0/20 4134 9318 32934 32934 32934");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Announcement {
    prefix: Ipv4Prefix,
    path: AsPath,
}

impl Announcement {
    /// Creates an announcement for `prefix` carrying `path`.
    #[must_use]
    pub fn new(prefix: Ipv4Prefix, path: AsPath) -> Self {
        Announcement { prefix, path }
    }

    /// The destination prefix.
    #[must_use]
    pub fn prefix(&self) -> Ipv4Prefix {
        self.prefix
    }

    /// The AS path, most-recent-first.
    #[must_use]
    pub fn path(&self) -> &AsPath {
        &self.path
    }

    /// Mutable access to the AS path (used by the simulated attacker).
    pub fn path_mut(&mut self) -> &mut AsPath {
        &mut self.path
    }

    /// The origin AS of the route, if the path is non-empty.
    #[must_use]
    pub fn origin(&self) -> Option<Asn> {
        self.path.origin()
    }

    /// Consumes the announcement, returning its parts.
    #[must_use]
    pub fn into_parts(self) -> (Ipv4Prefix, AsPath) {
        (self.prefix, self.path)
    }

    /// Returns a copy with `asn` prepended once to the path, as a correctly
    /// behaving BGP speaker does when propagating.
    #[must_use]
    pub fn propagated_by(&self, asn: Asn) -> Announcement {
        Announcement {
            prefix: self.prefix,
            path: self.path.prepended(asn),
        }
    }
}

impl fmt::Display for Announcement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.prefix, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(prefix: &str, path: &str) -> Announcement {
        Announcement::new(prefix.parse().unwrap(), path.parse().unwrap())
    }

    #[test]
    fn accessors() {
        let a = ann("10.0.0.0/8", "1 2 3");
        assert_eq!(a.prefix().to_string(), "10.0.0.0/8");
        assert_eq!(a.origin(), Some(Asn(3)));
        assert_eq!(a.path().len(), 3);
    }

    #[test]
    fn propagation_prepends_once() {
        let a = ann("10.0.0.0/8", "2 3");
        let b = a.propagated_by(Asn(1));
        assert_eq!(b.path().to_string(), "1 2 3");
        assert_eq!(a.path().to_string(), "2 3", "original untouched");
        assert_eq!(b.prefix(), a.prefix());
    }

    #[test]
    fn attacker_strips_via_path_mut() {
        let mut a = ann("69.171.224.0/20", "9 32934 32934 32934");
        let removed = a.path_mut().strip_origin_padding(1);
        assert_eq!(removed, 2);
        assert_eq!(a.to_string(), "69.171.224.0/20 9 32934");
    }

    #[test]
    fn into_parts_round_trip() {
        let a = ann("10.0.0.0/8", "1 2");
        let (prefix, path) = a.clone().into_parts();
        assert_eq!(Announcement::new(prefix, path), a);
    }
}
