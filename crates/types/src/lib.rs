//! Core BGP data types for the ASPP prefix-interception study.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: autonomous system numbers ([`Asn`]), IPv4 prefixes
//! ([`Ipv4Prefix`]), AS paths with explicit prepending support ([`AsPath`]),
//! BGP announcements ([`Announcement`]), and the business-relationship
//! classification used by Gao–Rexford policy routing ([`Relationship`],
//! [`RouteClass`]).
//!
//! The types are deliberately small, `Copy` where possible, and implement the
//! full set of common traits so they compose with standard collections.
//!
//! # Example
//!
//! ```
//! use aspp_types::{Asn, AsPath, Announcement, Ipv4Prefix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Facebook announces one of its prefixes with 5 copies of its ASN
//! // (4 prepends on top of the mandatory one).
//! let facebook = Asn(32934);
//! let mut path = AsPath::origin_with_padding(facebook, 5);
//! assert_eq!(path.origin_padding(), 5);
//!
//! // Level3 adds itself once while propagating.
//! path.prepend(Asn(3356));
//! assert_eq!(path.to_string(), "3356 32934 32934 32934 32934 32934");
//!
//! // An attacker strips the route down to a single origin copy.
//! let removed = path.strip_origin_padding(1);
//! assert_eq!(removed, 4);
//! assert_eq!(path.to_string(), "3356 32934");
//!
//! let ann = Announcement::new("69.171.224.0/20".parse::<Ipv4Prefix>()?, path);
//! assert_eq!(ann.path().origin(), Some(facebook));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod announce;
mod arena;
mod asn;
mod error;
mod path;
mod prefix;
mod relationship;

pub use announce::Announcement;
pub use arena::{PathArena, PathRange};
pub use asn::Asn;
pub use error::{AsppError, IngestReport, ParseAsPathError, ParseAsnError, ParsePrefixError};
pub use path::AsPath;
pub use prefix::Ipv4Prefix;
pub use relationship::{ParseRelationshipError, Relationship, RouteClass};

/// Well-known ASNs appearing in the paper's Facebook case study (Section III)
/// and in its named attack scenarios (Section VI-B).
pub mod well_known {
    use super::Asn;

    /// AT&T, the Tier-1 whose route to Facebook was diverted.
    pub const ATT: Asn = Asn(7018);
    /// Sprint, the Tier-1 attacker in the paper's Figure 9 scenario.
    pub const SPRINT: Asn = Asn(1239);
    /// NTT, the Tier-1 victim in the paper's Figure 11 scenario.
    pub const NTT: Asn = Asn(2914);
    /// Level 3, AT&T's normal next hop toward Facebook.
    pub const LEVEL3: Asn = Asn(3356);
    /// China Telecom, on the anomalous detour path.
    pub const CHINA_TELECOM: Asn = Asn(4134);
    /// SK Telecom (Korea), origin of the anomalous shorter announcement.
    pub const KOREA_TELECOM: Asn = Asn(9318);
    /// Facebook, the victim of the March 22nd 2011 anomaly.
    pub const FACEBOOK: Asn = Asn(32934);
    /// The small attacker of the paper's Figure 12 scenario.
    pub const SMALL_ATTACKER: Asn = Asn(30209);
    /// The small victim of the paper's Figure 12 scenario.
    pub const SMALL_VICTIM: Asn = Asn(12734);
}
