//! AS paths with first-class prepending support.

use core::fmt;
use core::str::FromStr;

use crate::error::ParseAsPathError;
use crate::Asn;

/// A BGP `AS_PATH` attribute: the sequence of ASNs an announcement has
/// traversed, stored most-recent-first (the paper's `[ASn … AS1 V … V]`
/// notation).
///
/// Prepending is represented explicitly as repeated entries, exactly as it
/// appears on the wire, so the *effective length* used by the BGP decision
/// process is simply [`AsPath::len`], while [`AsPath::unique_len`] gives the
/// number of distinct consecutive hops (the "real" AS-level hop count).
///
/// # Example
///
/// ```
/// use aspp_types::{Asn, AsPath};
///
/// // The anomalous Facebook route: 4134 9318 32934 32934 32934
/// let path: AsPath = "4134 9318 32934 32934 32934".parse().unwrap();
/// assert_eq!(path.len(), 5);
/// assert_eq!(path.unique_len(), 3);
/// assert_eq!(path.origin(), Some(Asn(32934)));
/// assert_eq!(path.origin_padding(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsPath {
    /// Hops ordered most-recent-first; the origin AS is last.
    hops: Vec<Asn>,
}

impl AsPath {
    /// Creates an empty path (as seen by the origin before announcing).
    ///
    /// ```
    /// # use aspp_types::AsPath;
    /// assert!(AsPath::new().is_empty());
    /// ```
    #[must_use]
    pub fn new() -> Self {
        AsPath::default()
    }

    /// Creates the path announced by `origin` with `padding` total copies of
    /// its ASN (`padding = 1` means no artificial prepending).
    ///
    /// # Panics
    ///
    /// Panics if `padding == 0`; an announced route always carries the origin
    /// at least once.
    ///
    /// ```
    /// # use aspp_types::{Asn, AsPath};
    /// let p = AsPath::origin_with_padding(Asn(32934), 3);
    /// assert_eq!(p.to_string(), "32934 32934 32934");
    /// ```
    #[must_use]
    pub fn origin_with_padding(origin: Asn, padding: usize) -> Self {
        assert!(
            padding > 0,
            "an announced path carries the origin at least once"
        );
        AsPath {
            hops: vec![origin; padding],
        }
    }

    /// Builds a path directly from hops ordered most-recent-first.
    ///
    /// ```
    /// # use aspp_types::{Asn, AsPath};
    /// let p = AsPath::from_hops([Asn(3356), Asn(32934)]);
    /// assert_eq!(p.to_string(), "3356 32934");
    /// ```
    #[must_use]
    pub fn from_hops<I: IntoIterator<Item = Asn>>(hops: I) -> Self {
        AsPath {
            hops: hops.into_iter().collect(),
        }
    }

    /// The effective path length — the value the BGP decision process
    /// compares, *including* prepended copies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Returns `true` if the path has no hops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The number of distinct consecutive ASes — the real AS-level hop count
    /// with all prepending collapsed.
    ///
    /// ```
    /// # use aspp_types::AsPath;
    /// let p: AsPath = "7018 4134 4134 9318 32934 32934".parse().unwrap();
    /// assert_eq!(p.unique_len(), 4);
    /// ```
    #[must_use]
    pub fn unique_len(&self) -> usize {
        let mut n = 0;
        let mut prev = None;
        for &h in &self.hops {
            if Some(h) != prev {
                n += 1;
                prev = Some(h);
            }
        }
        n
    }

    /// The origin AS (last element), or `None` for an empty path.
    #[must_use]
    pub fn origin(&self) -> Option<Asn> {
        self.hops.last().copied()
    }

    /// The most recent AS on the path (first element), or `None` if empty.
    #[must_use]
    pub fn first(&self) -> Option<Asn> {
        self.hops.first().copied()
    }

    /// Iterates over the hops most-recent-first, prepends included.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.hops.iter().copied()
    }

    /// The raw hop slice, most-recent-first.
    #[must_use]
    pub fn hops(&self) -> &[Asn] {
        &self.hops
    }

    /// Returns the path with consecutive duplicates collapsed.
    ///
    /// ```
    /// # use aspp_types::{Asn, AsPath};
    /// let p: AsPath = "9318 32934 32934 32934".parse().unwrap();
    /// assert_eq!(p.collapsed(), vec![Asn(9318), Asn(32934)]);
    /// ```
    #[must_use]
    pub fn collapsed(&self) -> Vec<Asn> {
        let mut out = Vec::with_capacity(self.unique_len());
        for &h in &self.hops {
            if out.last() != Some(&h) {
                out.push(h);
            }
        }
        out
    }

    /// The number of consecutive copies of the origin ASN at the tail of the
    /// path — the paper's λ. Zero for an empty path.
    ///
    /// ```
    /// # use aspp_types::AsPath;
    /// let p: AsPath = "3356 32934 32934 32934 32934 32934".parse().unwrap();
    /// assert_eq!(p.origin_padding(), 5);
    /// ```
    #[must_use]
    pub fn origin_padding(&self) -> usize {
        match self.origin() {
            Some(origin) => self.hops.iter().rev().take_while(|&&h| h == origin).count(),
            None => 0,
        }
    }

    /// The number of consecutive copies of `asn` at whatever position it
    /// first appears (scanning most-recent-first); zero if absent.
    ///
    /// This captures *intermediary* prepending: a transit AS may also pad.
    ///
    /// ```
    /// # use aspp_types::{Asn, AsPath};
    /// let p: AsPath = "7018 4134 4134 4134 32934".parse().unwrap();
    /// assert_eq!(p.padding_of(Asn(4134)), 3);
    /// assert_eq!(p.padding_of(Asn(7018)), 1);
    /// assert_eq!(p.padding_of(Asn(9999)), 0);
    /// ```
    #[must_use]
    pub fn padding_of(&self, asn: Asn) -> usize {
        let mut iter = self.hops.iter().skip_while(|&&h| h != asn);
        iter.by_ref().take_while(|&&h| h == asn).count()
    }

    /// Returns `true` if any AS appears more than once consecutively,
    /// i.e. the path shows some form of prepending. This is the predicate
    /// behind the paper's Figure 5 measurement.
    ///
    /// ```
    /// # use aspp_types::AsPath;
    /// assert!("3356 32934 32934".parse::<AsPath>().unwrap().has_prepending());
    /// assert!(!"3356 32934".parse::<AsPath>().unwrap().has_prepending());
    /// ```
    #[must_use]
    pub fn has_prepending(&self) -> bool {
        self.hops.windows(2).any(|w| w[0] == w[1])
    }

    /// The maximum number of consecutive copies of any single ASN — the
    /// quantity histogrammed in the paper's Figure 6.
    ///
    /// ```
    /// # use aspp_types::AsPath;
    /// let p: AsPath = "1 2 2 2 3 3".parse().unwrap();
    /// assert_eq!(p.max_padding(), 3);
    /// ```
    #[must_use]
    pub fn max_padding(&self) -> usize {
        let mut best = 0;
        let mut run = 0;
        let mut prev = None;
        for &h in &self.hops {
            if Some(h) == prev {
                run += 1;
            } else {
                run = 1;
                prev = Some(h);
            }
            best = best.max(run);
        }
        best
    }

    /// Returns `true` if the collapsed path visits any AS twice — a routing
    /// loop, which a correct BGP speaker must reject.
    ///
    /// ```
    /// # use aspp_types::AsPath;
    /// assert!("1 2 1".parse::<AsPath>().unwrap().has_loop());
    /// assert!(!"1 2 2 3".parse::<AsPath>().unwrap().has_loop());
    /// ```
    #[must_use]
    pub fn has_loop(&self) -> bool {
        let collapsed = self.collapsed();
        for (i, a) in collapsed.iter().enumerate() {
            if collapsed[i + 1..].contains(a) {
                return true;
            }
        }
        false
    }

    /// Returns `true` if `asn` appears anywhere on the path.
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.hops.contains(&asn)
    }

    /// Prepends `asn` once to the front of the path (normal propagation).
    pub fn prepend(&mut self, asn: Asn) {
        self.hops.insert(0, asn);
    }

    /// Prepends `asn` `count` times (traffic-engineering padding).
    ///
    /// ```
    /// # use aspp_types::{Asn, AsPath};
    /// let mut p = AsPath::origin_with_padding(Asn(1), 1);
    /// p.prepend_n(Asn(2), 3);
    /// assert_eq!(p.to_string(), "2 2 2 1");
    /// ```
    pub fn prepend_n(&mut self, asn: Asn, count: usize) {
        for _ in 0..count {
            self.hops.insert(0, asn);
        }
    }

    /// Returns a copy of the path with `asn` prepended once.
    #[must_use]
    pub fn prepended(&self, asn: Asn) -> AsPath {
        let mut hops = Vec::with_capacity(self.hops.len() + 1);
        hops.push(asn);
        hops.extend_from_slice(&self.hops);
        AsPath { hops }
    }

    /// The ASPP-interception primitive: removes origin padding down to `keep`
    /// copies and returns how many were removed. Keeping at least one copy
    /// preserves the legitimate origin — the property that makes the attack
    /// invisible to MOAS detectors.
    ///
    /// ```
    /// # use aspp_types::AsPath;
    /// let mut p: AsPath = "9318 32934 32934 32934 32934 32934".parse().unwrap();
    /// assert_eq!(p.strip_origin_padding(1), 4);
    /// assert_eq!(p.to_string(), "9318 32934");
    /// // Idempotent once stripped.
    /// assert_eq!(p.strip_origin_padding(1), 0);
    /// ```
    pub fn strip_origin_padding(&mut self, keep: usize) -> usize {
        let keep = keep.max(1);
        let padding = self.origin_padding();
        if padding <= keep {
            return 0;
        }
        let remove = padding - keep;
        self.hops.truncate(self.hops.len() - remove);
        remove
    }

    /// Removes **every** run of consecutive duplicates, collapsing origin
    /// *and* intermediary prepending alike, and returns how many copies were
    /// removed. The paper notes the attack generalizes this way: "the
    /// prepending is not limited to the origin AS. It can be any ASes who
    /// perform AS path prepending before the attacker."
    ///
    /// ```
    /// # use aspp_types::AsPath;
    /// let mut p: AsPath = "7 4 4 4 9 1 1".parse().unwrap();
    /// assert_eq!(p.strip_all_padding(), 3);
    /// assert_eq!(p.to_string(), "7 4 9 1");
    /// ```
    pub fn strip_all_padding(&mut self) -> usize {
        let before = self.hops.len();
        let collapsed = self.collapsed();
        self.hops = collapsed;
        before - self.hops.len()
    }

    /// Like [`strip_origin_padding`](Self::strip_origin_padding) but returns
    /// the stripped path, leaving `self` untouched.
    #[must_use]
    pub fn with_origin_padding_stripped(&self, keep: usize) -> AsPath {
        let mut out = self.clone();
        out.strip_origin_padding(keep);
        out
    }

    /// The transit segment used by the detection algorithm (Figure 4): the
    /// collapsed hops strictly between the first AS and the origin padding,
    /// i.e. `[AS_{I-1} … AS_1]` for a path `[AS_I AS_{I-1} … AS_1 V^λ]`.
    ///
    /// Returns an empty slice if the path has fewer than three collapsed hops.
    ///
    /// ```
    /// # use aspp_types::{Asn, AsPath};
    /// let p: AsPath = "2914 4134 9318 32934 32934 32934".parse().unwrap();
    /// assert_eq!(p.detector_segment(), vec![Asn(4134), Asn(9318)]);
    /// ```
    #[must_use]
    pub fn detector_segment(&self) -> Vec<Asn> {
        let collapsed = self.collapsed();
        if collapsed.len() < 3 {
            return Vec::new();
        }
        collapsed[1..collapsed.len() - 1].to_vec()
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for h in &self.hops {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{h}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = ParseAsPathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut hops = Vec::new();
        for token in s.split_whitespace() {
            let asn = token
                .parse::<Asn>()
                .map_err(|_| ParseAsPathError::new(token))?;
            hops.push(asn);
        }
        Ok(AsPath { hops })
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        AsPath::from_hops(iter)
    }
}

impl Extend<Asn> for AsPath {
    fn extend<I: IntoIterator<Item = Asn>>(&mut self, iter: I) {
        self.hops.extend(iter);
    }
}

impl<'a> IntoIterator for &'a AsPath {
    type Item = &'a Asn;
    type IntoIter = core::slice::Iter<'a, Asn>;

    fn into_iter(self) -> Self::IntoIter {
        self.hops.iter()
    }
}

impl IntoIterator for AsPath {
    type Item = Asn;
    type IntoIter = std::vec::IntoIter<Asn>;

    fn into_iter(self) -> Self::IntoIter {
        self.hops.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> AsPath {
        s.parse().unwrap()
    }

    #[test]
    fn empty_path_properties() {
        let e = AsPath::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.unique_len(), 0);
        assert_eq!(e.origin(), None);
        assert_eq!(e.first(), None);
        assert_eq!(e.origin_padding(), 0);
        assert!(!e.has_prepending());
        assert!(!e.has_loop());
        assert_eq!(e.to_string(), "");
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_padding_origin_panics() {
        let _ = AsPath::origin_with_padding(Asn(1), 0);
    }

    #[test]
    fn facebook_anomaly_paths() {
        // Normal 7-hop route with 5 origin copies.
        let normal = p("7018 3356 32934 32934 32934 32934 32934");
        assert_eq!(normal.len(), 7);
        assert_eq!(normal.unique_len(), 3);
        assert_eq!(normal.origin_padding(), 5);

        // Anomalous route: 2 prepends stripped, detour via 9318/4134.
        let anomalous = p("7018 4134 9318 32934 32934 32934");
        assert_eq!(anomalous.len(), 6);
        assert_eq!(anomalous.origin_padding(), 3);
        assert!(
            anomalous.len() < normal.len(),
            "the bogus route wins on length"
        );
        assert!(
            anomalous.unique_len() > normal.unique_len(),
            "but is physically longer"
        );
    }

    #[test]
    fn strip_keeps_at_least_one_copy() {
        let mut path = p("1 2 2 2 2");
        assert_eq!(path.strip_origin_padding(0), 3); // keep=0 clamps to 1
        assert_eq!(path.to_string(), "1 2");
    }

    #[test]
    fn strip_respects_keep_count() {
        let mut path = p("9 5 5 5 5 5");
        assert_eq!(path.strip_origin_padding(3), 2);
        assert_eq!(path.to_string(), "9 5 5 5");
        assert_eq!(path.strip_origin_padding(3), 0);
    }

    #[test]
    fn strip_noop_when_not_padded() {
        let mut path = p("1 2 3");
        assert_eq!(path.strip_origin_padding(1), 0);
        assert_eq!(path.to_string(), "1 2 3");
    }

    #[test]
    fn strip_only_touches_tail_padding() {
        // Intermediary prepending of 4134 must survive an origin strip.
        let mut path = p("4134 4134 9318 32934 32934");
        assert_eq!(path.strip_origin_padding(1), 1);
        assert_eq!(path.to_string(), "4134 4134 9318 32934");
    }

    #[test]
    fn padding_measurements() {
        let path = p("1 2 2 3 3 3 3");
        assert_eq!(path.max_padding(), 4);
        assert_eq!(path.padding_of(Asn(2)), 2);
        assert_eq!(path.padding_of(Asn(3)), 4);
        assert_eq!(path.origin_padding(), 4);
        assert!(path.has_prepending());
    }

    #[test]
    fn detector_segment_examples() {
        // Paper Figure 3: [E A V V V] and [M A V] share segment [A].
        let long = p("55 10 1 1 1");
        let short = p("66 10 1");
        assert_eq!(long.detector_segment(), vec![Asn(10)]);
        assert_eq!(short.detector_segment(), vec![Asn(10)]);
        assert_eq!(long.detector_segment(), short.detector_segment());

        // Too short to have a transit segment.
        assert!(p("1 2").detector_segment().is_empty());
        assert!(p("1").detector_segment().is_empty());
    }

    #[test]
    fn prepend_operations() {
        let mut path = AsPath::origin_with_padding(Asn(32934), 1);
        path.prepend_n(Asn(32934), 4); // origin pads itself 4 more times
        path.prepend(Asn(3356));
        path.prepend(Asn(7018));
        assert_eq!(path.to_string(), "7018 3356 32934 32934 32934 32934 32934");
        let copy = path.prepended(Asn(2914));
        assert_eq!(copy.first(), Some(Asn(2914)));
        assert_eq!(path.first(), Some(Asn(7018)), "prepended must not mutate");
    }

    #[test]
    fn loops_detected_across_prepends() {
        assert!(p("1 2 2 3 1").has_loop());
        assert!(!p("1 1 2 2 3 3").has_loop());
    }

    #[test]
    fn from_iterator_and_extend() {
        let path: AsPath = [Asn(1), Asn(2)].into_iter().collect();
        assert_eq!(path.to_string(), "1 2");
        let mut path = path;
        path.extend([Asn(3)]);
        assert_eq!(path.to_string(), "1 2 3");
        let hops: Vec<Asn> = (&path).into_iter().copied().collect();
        assert_eq!(hops, vec![Asn(1), Asn(2), Asn(3)]);
    }

    #[test]
    fn parse_rejects_bad_tokens() {
        assert!("1 x 3".parse::<AsPath>().is_err());
        let err = "1 {2,3}".parse::<AsPath>().unwrap_err();
        assert_eq!(err.token(), "{2,3}");
    }

    proptest! {
        #[test]
        fn prop_display_parse_round_trip(hops in proptest::collection::vec(0u32..100_000, 0..16)) {
            let path = AsPath::from_hops(hops.iter().copied().map(Asn));
            let parsed: AsPath = path.to_string().parse().unwrap();
            prop_assert_eq!(parsed, path);
        }

        #[test]
        fn prop_strip_never_removes_origin(
            origin in 1u32..1000, pad in 1usize..12, keep in 0usize..12,
            transit in proptest::collection::vec(1001u32..2000, 0..6)
        ) {
            let mut path = AsPath::origin_with_padding(Asn(origin), pad);
            for t in transit {
                path.prepend(Asn(t));
            }
            let before_unique = path.unique_len();
            path.strip_origin_padding(keep);
            prop_assert_eq!(path.origin(), Some(Asn(origin)));
            prop_assert_eq!(path.unique_len(), before_unique);
            prop_assert!(path.origin_padding() >= keep.max(1).min(pad));
        }

        #[test]
        fn prop_unique_len_invariant_under_padding(
            hops in proptest::collection::vec(1u32..50, 1..8), extra in 1usize..5
        ) {
            let base = AsPath::from_hops(hops.iter().copied().map(Asn));
            let mut padded = base.clone();
            let first = base.first().unwrap();
            padded.prepend_n(first, extra);
            prop_assert_eq!(padded.unique_len(), base.unique_len());
            prop_assert_eq!(padded.len(), base.len() + extra);
        }

        #[test]
        fn prop_collapsed_has_no_adjacent_duplicates(
            hops in proptest::collection::vec(1u32..10, 0..20)
        ) {
            let path = AsPath::from_hops(hops.iter().copied().map(Asn));
            let collapsed = path.collapsed();
            prop_assert!(collapsed.windows(2).all(|w| w[0] != w[1]));
            prop_assert_eq!(collapsed.len(), path.unique_len());
        }
    }
}
