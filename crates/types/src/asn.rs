//! Autonomous system numbers.

use core::fmt;
use core::str::FromStr;

use crate::error::ParseAsnError;

/// An autonomous system number (ASN).
///
/// The public field allows literal construction (`Asn(7018)`), mirroring how
/// ASNs appear in BGP tooling. Four-byte ASNs are supported because the type
/// wraps a `u32`.
///
/// # Example
///
/// ```
/// use aspp_types::Asn;
///
/// let att: Asn = "7018".parse().unwrap();
/// assert_eq!(att, Asn(7018));
/// assert_eq!(att.to_string(), "7018");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl Asn {
    /// Returns the raw 32-bit ASN value.
    ///
    /// ```
    /// # use aspp_types::Asn;
    /// assert_eq!(Asn(64512).value(), 64512);
    /// ```
    #[must_use]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns `true` if this ASN falls in a private-use range
    /// (64512–65534 for 2-byte, 4200000000–4294967294 for 4-byte ASNs).
    ///
    /// ```
    /// # use aspp_types::Asn;
    /// assert!(Asn(64512).is_private());
    /// assert!(!Asn(7018).is_private());
    /// ```
    #[must_use]
    pub const fn is_private(self) -> bool {
        (self.0 >= 64512 && self.0 <= 65534) || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> Self {
        asn.0
    }
}

impl FromStr for Asn {
    type Err = ParseAsnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.trim()
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseAsnError::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        for raw in [0u32, 1, 7018, 32934, 65535, 4_294_967_295] {
            let asn = Asn(raw);
            let parsed: Asn = asn.to_string().parse().unwrap();
            assert_eq!(parsed, asn);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("AS7018".parse::<Asn>().is_err());
        assert!("-1".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn parse_tolerates_whitespace() {
        assert_eq!(" 7018 ".parse::<Asn>().unwrap(), Asn(7018));
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(4_294_967_295).is_private());
        assert!(!Asn(1).is_private());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn(100) < Asn(7018));
        let mut v = vec![Asn(3), Asn(1), Asn(2)];
        v.sort();
        assert_eq!(v, vec![Asn(1), Asn(2), Asn(3)]);
    }
}
