//! IPv4 prefixes in CIDR notation.

use core::fmt;
use core::str::FromStr;

use crate::error::ParsePrefixError;

/// An IPv4 address block in CIDR notation, e.g. `69.171.224.0/20`.
///
/// The network address is canonicalized: constructing a prefix whose address
/// has host bits set is an error, which keeps `Eq`/`Hash` meaningful.
///
/// # Example
///
/// ```
/// use aspp_types::Ipv4Prefix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fb: Ipv4Prefix = "69.171.224.0/20".parse()?;
/// let host: Ipv4Prefix = "69.171.239.255/32".parse()?;
/// assert!(fb.contains(&host));
/// assert_eq!(fb.to_string(), "69.171.224.0/20");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix from a network address (as a big-endian `u32`) and a
    /// prefix length.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePrefixError::LengthOutOfRange`] if `len > 32` and
    /// [`ParsePrefixError::HostBitsSet`] if `addr` has bits set beyond `len`.
    ///
    /// ```
    /// use aspp_types::Ipv4Prefix;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = Ipv4Prefix::new(0x0a000000, 8)?; // 10.0.0.0/8
    /// assert_eq!(p.to_string(), "10.0.0.0/8");
    /// assert!(Ipv4Prefix::new(0x0a000001, 8).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(addr: u32, len: u8) -> Result<Self, ParsePrefixError> {
        if len > 32 {
            return Err(ParsePrefixError::LengthOutOfRange(len));
        }
        if addr & !Self::mask_for(len) != 0 {
            return Err(ParsePrefixError::HostBitsSet { addr, len });
        }
        Ok(Ipv4Prefix { addr, len })
    }

    /// Creates the prefix covering `addr` at length `len`, zeroing host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    ///
    /// ```
    /// # use aspp_types::Ipv4Prefix;
    /// let p = Ipv4Prefix::containing(0x0a0a0a0a, 16); // 10.10.10.10 -> 10.10.0.0/16
    /// assert_eq!(p.to_string(), "10.10.0.0/16");
    /// ```
    #[must_use]
    pub fn containing(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Ipv4Prefix {
            addr: addr & Self::mask_for(len),
            len,
        }
    }

    /// The `index`-th synthetic /24 for generated workloads, laid out
    /// densely through private space: `10.x.y.0/24` for the first 2^16
    /// indices, then `11.x.y.0/24`, and so on. Indices map to pairwise
    /// distinct prefixes across the whole supported range, so
    /// million-prefix streams never collide (the old `10.0.0.0/8 + i<<8`
    /// scheme silently wrapped out of its block at i ≥ 2^16).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the available space (first octets 10..=99,
    /// ≈ 5.9 M prefixes — far past the 2^20 the roadmap's workloads need).
    ///
    /// ```
    /// # use aspp_types::Ipv4Prefix;
    /// assert_eq!(Ipv4Prefix::synthetic_24(0).to_string(), "10.0.0.0/24");
    /// assert_eq!(Ipv4Prefix::synthetic_24(1).to_string(), "10.0.1.0/24");
    /// assert_eq!(Ipv4Prefix::synthetic_24(1 << 16).to_string(), "11.0.0.0/24");
    /// ```
    #[must_use]
    pub fn synthetic_24(index: usize) -> Self {
        let block = index >> 16;
        assert!(block < 90, "synthetic prefix index {index} out of space");
        let addr = ((10 + block as u32) << 24) | (((index & 0xffff) as u32) << 8);
        Ipv4Prefix { addr, len: 24 }
    }

    /// The network address as a big-endian `u32`.
    #[must_use]
    pub const fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length in bits.
    // `len` here is CIDR terminology (mask length), not a container size, so
    // an `is_empty` counterpart would be meaningless.
    #[allow(clippy::len_without_is_empty)]
    #[must_use]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// Returns `true` for the zero-length default route `0.0.0.0/0`.
    #[must_use]
    pub const fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `other` is equal to or more specific than `self`.
    ///
    /// ```
    /// # use aspp_types::Ipv4Prefix;
    /// let a: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    /// let b: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
    /// assert!(a.contains(&b));
    /// assert!(!b.contains(&a));
    /// assert!(a.contains(&a));
    /// ```
    #[must_use]
    pub fn contains(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask_for(self.len)) == self.addr
    }

    /// Returns `true` if the given host address falls inside this prefix.
    ///
    /// ```
    /// # use aspp_types::Ipv4Prefix;
    /// let p: Ipv4Prefix = "192.168.0.0/16".parse().unwrap();
    /// assert!(p.contains_addr(0xc0a80101)); // 192.168.1.1
    /// assert!(!p.contains_addr(0x08080808)); // 8.8.8.8
    /// ```
    #[must_use]
    pub fn contains_addr(&self, addr: u32) -> bool {
        (addr & Self::mask_for(self.len)) == self.addr
    }

    /// Splits the prefix into its two immediate more-specific halves, or
    /// `None` for a /32.
    ///
    /// ```
    /// # use aspp_types::Ipv4Prefix;
    /// let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    /// let (lo, hi) = p.split().unwrap();
    /// assert_eq!(lo.to_string(), "10.0.0.0/9");
    /// assert_eq!(hi.to_string(), "10.128.0.0/9");
    /// ```
    #[must_use]
    pub fn split(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let hi_bit = 1u32 << (32 - len);
        Some((
            Ipv4Prefix {
                addr: self.addr,
                len,
            },
            Ipv4Prefix {
                addr: self.addr | hi_bit,
                len,
            },
        ))
    }

    /// The lowest host address covered by the prefix (the network address
    /// itself) — a canonical probe destination for longest-prefix-match
    /// walks.
    ///
    /// ```
    /// # use aspp_types::Ipv4Prefix;
    /// let p: Ipv4Prefix = "10.128.0.0/9".parse().unwrap();
    /// assert_eq!(p.first_addr(), 0x0a80_0000);
    /// ```
    #[must_use]
    pub const fn first_addr(&self) -> u32 {
        self.addr
    }

    /// The highest host address covered by the prefix — the probe that a
    /// lower-half more-specific announcement can never capture.
    ///
    /// ```
    /// # use aspp_types::Ipv4Prefix;
    /// let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    /// assert_eq!(p.last_addr(), 0x0aff_ffff);
    /// let (lo, _) = p.split().unwrap();
    /// assert!(!lo.contains_addr(p.last_addr()));
    /// ```
    #[must_use]
    pub fn last_addr(&self) -> u32 {
        self.addr | !Self::mask_for(self.len)
    }

    fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}/{}",
            self.addr >> 24,
            (self.addr >> 16) & 0xff,
            (self.addr >> 8) & 0xff,
            self.addr & 0xff,
            self.len
        )
    }
}

impl FromStr for Ipv4Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (addr_part, len_part) = s
            .split_once('/')
            .ok_or_else(|| ParsePrefixError::Syntax(s.to_owned()))?;
        let len: u8 = len_part
            .parse()
            .map_err(|_| ParsePrefixError::Syntax(s.to_owned()))?;
        let mut octets = [0u8; 4];
        let mut count = 0;
        for part in addr_part.split('.') {
            if count == 4 {
                return Err(ParsePrefixError::Syntax(s.to_owned()));
            }
            octets[count] = part
                .parse()
                .map_err(|_| ParsePrefixError::Syntax(s.to_owned()))?;
            count += 1;
        }
        if count != 4 {
            return Err(ParsePrefixError::Syntax(s.to_owned()));
        }
        let addr = u32::from_be_bytes(octets);
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "69.171.224.0/20",
            "69.171.255.0/24",
            "255.255.255.255/32",
        ] {
            let p: Ipv4Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn synthetic_24_is_pairwise_distinct_at_a_million_prefixes() {
        // The old `0x0a00_0000 + (i << 8)` scheme collided past 2^16; the
        // widened layout must stay injective through the 2^20 regime the
        // roadmap's workloads use.
        let mut seen = std::collections::HashSet::with_capacity(1 << 20);
        for i in 0..(1usize << 20) {
            let p = Ipv4Prefix::synthetic_24(i);
            assert_eq!(p.len(), 24);
            assert!(seen.insert(p.addr()), "collision at index {i}: {p}");
        }
        assert_eq!(seen.len(), 1 << 20);
    }

    #[test]
    fn synthetic_24_preserves_the_legacy_layout_below_2_16() {
        // Seeded corpora generated before the widening must not change.
        for i in [0usize, 1, 255, 256, 65535] {
            assert_eq!(
                Ipv4Prefix::synthetic_24(i).addr(),
                0x0a00_0000 + ((i as u32) << 8)
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for s in [
            "",
            "10.0.0.0",
            "10.0.0/8",
            "10.0.0.0.0/8",
            "10.0.0.0/33",
            "10.0.0.1/24",
            "256.0.0.0/8",
            "a.b.c.d/8",
            "10.0.0.0/x",
        ] {
            assert!(s.parse::<Ipv4Prefix>().is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn specific_error_variants() {
        assert_eq!(
            Ipv4Prefix::new(0, 33).unwrap_err(),
            ParsePrefixError::LengthOutOfRange(33)
        );
        assert!(matches!(
            Ipv4Prefix::new(1, 24).unwrap_err(),
            ParsePrefixError::HostBitsSet { .. }
        ));
    }

    #[test]
    fn containment_semantics() {
        let default: Ipv4Prefix = "0.0.0.0/0".parse().unwrap();
        let a: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Ipv4Prefix = "10.64.0.0/10".parse().unwrap();
        let c: Ipv4Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(default.contains(&a));
        assert!(a.contains(&b));
        assert!(!a.contains(&c));
        assert!(!b.contains(&a));
        assert!(default.is_default());
        assert!(!a.is_default());
    }

    #[test]
    fn containing_zeroes_host_bits() {
        let p = Ipv4Prefix::containing(u32::from_be_bytes([192, 168, 34, 57]), 24);
        assert_eq!(p.to_string(), "192.168.34.0/24");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn containing_panics_on_bad_length() {
        let _ = Ipv4Prefix::containing(0, 40);
    }

    #[test]
    fn probe_addresses_bound_the_block() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains_addr(p.first_addr()));
        assert!(p.contains_addr(p.last_addr()));
        let (lo, hi) = p.split().unwrap();
        assert!(lo.contains_addr(p.first_addr()));
        assert!(hi.contains_addr(p.last_addr()));
        assert!(!lo.contains_addr(p.last_addr()));
        assert!(!hi.contains_addr(p.first_addr()));
        let host: Ipv4Prefix = "1.2.3.4/32".parse().unwrap();
        assert_eq!(host.first_addr(), host.last_addr());
    }

    #[test]
    fn split_halves_cover_parent() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let (lo, hi) = p.split().unwrap();
        assert!(p.contains(&lo) && p.contains(&hi));
        assert!(!lo.contains(&hi) && !hi.contains(&lo));
        let host: Ipv4Prefix = "1.2.3.4/32".parse().unwrap();
        assert!(host.split().is_none());
    }

    proptest! {
        #[test]
        fn prop_round_trip(addr in any::<u32>(), len in 0u8..=32) {
            let p = Ipv4Prefix::containing(addr, len);
            let parsed: Ipv4Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(parsed, p);
        }

        #[test]
        fn prop_contains_is_reflexive_and_antisymmetric(
            addr in any::<u32>(), len_a in 0u8..=32, len_b in 0u8..=32
        ) {
            let a = Ipv4Prefix::containing(addr, len_a);
            let b = Ipv4Prefix::containing(addr, len_b);
            prop_assert!(a.contains(&a));
            if a.contains(&b) && b.contains(&a) {
                prop_assert_eq!(a, b);
            }
        }

        #[test]
        fn prop_synthetic_24_injective(i in 0usize..(1 << 20), j in 0usize..(1 << 20)) {
            let a = Ipv4Prefix::synthetic_24(i);
            let b = Ipv4Prefix::synthetic_24(j);
            prop_assert_eq!(a == b, i == j);
        }

        #[test]
        fn prop_split_children_contained(addr in any::<u32>(), len in 0u8..=31) {
            let p = Ipv4Prefix::containing(addr, len);
            let (lo, hi) = p.split().unwrap();
            prop_assert!(p.contains(&lo));
            prop_assert!(p.contains(&hi));
            prop_assert_eq!(lo.len(), len + 1);
            prop_assert_eq!(hi.len(), len + 1);
        }
    }
}
