//! A flat, append-only arena for AS-path hops.
//!
//! Route engines reconstruct thousands of observed paths per experiment;
//! materializing each one as an [`AsPath`] (a fresh `Vec<Asn>`) makes the
//! reconstruction loop allocation-bound. A [`PathArena`] instead packs every
//! path's hops into **one** growable buffer and hands out [`PathRange`]
//! handles — plain `u32` index pairs — so building, comparing and discarding
//! paths costs no per-path allocation. An [`AsPath`] is produced only at the
//! API boundary, via [`PathArena::to_path`].
//!
//! Hops are stored in wire order (most-recent-first), matching [`AsPath`].
//!
//! # Example
//!
//! ```
//! use aspp_types::{Asn, PathArena};
//!
//! let mut arena = PathArena::new();
//! let start = arena.begin();
//! arena.push(Asn(3356));
//! arena.push_n(Asn(32934), 3);
//! let range = arena.finish(start);
//! assert_eq!(arena.slice(range).len(), 4);
//! assert_eq!(arena.to_path(range).to_string(), "3356 32934 32934 32934");
//! ```

use crate::{AsPath, Asn};

/// A half-open range of hops inside a [`PathArena`]: one reconstructed
/// path's handle. Copyable, 8 bytes, independent of path length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PathRange {
    start: u32,
    end: u32,
}

impl PathRange {
    /// Number of hops in the range (the path's effective length).
    #[must_use]
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// Returns `true` for a zero-hop range (the origin's own empty path).
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

/// The arena itself: a single hop buffer shared by every path built into it.
///
/// Paths are built bracketed — [`begin`](Self::begin), any number of
/// [`push`](Self::push)/[`push_n`](Self::push_n)/[`extend`](Self::extend),
/// then [`finish`](Self::finish) — and read back through their
/// [`PathRange`]. [`clear`](Self::clear) recycles the buffer (capacity
/// kept), which is what makes a long-lived arena a zero-allocation scratch
/// for per-pass reconstruction.
#[derive(Clone, Debug, Default)]
pub struct PathArena {
    hops: Vec<Asn>,
}

impl PathArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        PathArena::default()
    }

    /// An empty arena with room for `hops` hops.
    #[must_use]
    pub fn with_capacity(hops: usize) -> Self {
        PathArena {
            hops: Vec::with_capacity(hops),
        }
    }

    /// Total hops stored across all finished and in-progress paths.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Returns `true` when no hops are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Drops every stored path, keeping the allocation.
    pub fn clear(&mut self) {
        self.hops.clear();
    }

    /// Opens a new path; returns the mark to pass to
    /// [`finish`](Self::finish).
    ///
    /// # Panics
    ///
    /// Panics if the arena already holds `u32::MAX` hops.
    #[must_use]
    pub fn begin(&self) -> u32 {
        u32::try_from(self.hops.len()).expect("arena exceeds u32 hops")
    }

    /// Appends one hop to the path under construction.
    pub fn push(&mut self, asn: Asn) {
        self.hops.push(asn);
    }

    /// Appends `n` copies of `asn` (a prepend run) to the path under
    /// construction.
    pub fn push_n(&mut self, asn: Asn, n: usize) {
        self.hops.resize(self.hops.len() + n, asn);
    }

    /// Appends a slice of hops (e.g. an attack base path) verbatim.
    pub fn extend(&mut self, hops: &[Asn]) {
        self.hops.extend_from_slice(hops);
    }

    /// Closes the path opened at `start` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if the arena grew past `u32::MAX` hops.
    pub fn finish(&mut self, start: u32) -> PathRange {
        PathRange {
            start,
            end: u32::try_from(self.hops.len()).expect("arena exceeds u32 hops"),
        }
    }

    /// Truncates the arena back to `mark`, discarding any hops pushed after
    /// it — the cheap way to abandon or recycle a trial reconstruction.
    pub fn truncate(&mut self, mark: u32) {
        self.hops.truncate(mark as usize);
    }

    /// The hops of a finished path, wire order (most-recent-first).
    ///
    /// # Panics
    ///
    /// Panics if `range` does not lie within the arena (e.g. after a
    /// [`clear`](Self::clear)).
    #[must_use]
    pub fn slice(&self, range: PathRange) -> &[Asn] {
        &self.hops[range.start as usize..range.end as usize]
    }

    /// Materializes a finished path as an owned [`AsPath`] — the boundary
    /// reconstruction, and the only allocating read.
    #[must_use]
    pub fn to_path(&self, range: PathRange) -> AsPath {
        AsPath::from_hops(self.slice(range).iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_compare_and_materialize() {
        let mut arena = PathArena::new();
        let s1 = arena.begin();
        arena.push(Asn(7018));
        arena.push_n(Asn(32934), 2);
        let p1 = arena.finish(s1);

        let s2 = arena.begin();
        arena.extend(&[Asn(7018), Asn(32934), Asn(32934)]);
        let p2 = arena.finish(s2);

        assert_eq!(p1.len(), 3);
        assert!(!p1.is_empty());
        assert_eq!(arena.slice(p1), arena.slice(p2));
        assert_eq!(arena.to_path(p1), arena.to_path(p2));
        assert_eq!(arena.to_path(p1).to_string(), "7018 32934 32934");
        assert_eq!(arena.len(), 6);
    }

    #[test]
    fn empty_path_and_clear_recycling() {
        let mut arena = PathArena::with_capacity(16);
        let s = arena.begin();
        let empty = arena.finish(s);
        assert!(empty.is_empty());
        assert_eq!(arena.to_path(empty), AsPath::new());

        arena.push_n(Asn(1), 5);
        assert_eq!(arena.len(), 5);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.begin(), 0);
    }

    #[test]
    fn truncate_discards_trial_hops() {
        let mut arena = PathArena::new();
        let mark = arena.begin();
        arena.push_n(Asn(9), 4);
        arena.truncate(mark);
        assert!(arena.is_empty());
        let s = arena.begin();
        arena.push(Asn(2));
        let r = arena.finish(s);
        assert_eq!(arena.slice(r), &[Asn(2)]);
    }
}
