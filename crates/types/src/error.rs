//! Error types for parsing the textual BGP representations.

use core::fmt;
use std::error::Error;

/// Error returned when a string cannot be parsed as an [`Asn`](crate::Asn).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsnError {
    input: String,
}

impl ParseAsnError {
    pub(crate) fn new(input: &str) -> Self {
        ParseAsnError {
            input: input.to_owned(),
        }
    }

    /// The rejected input string.
    #[must_use]
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN syntax: {:?}", self.input)
    }
}

impl Error for ParseAsnError {}

/// Error returned when a string cannot be parsed as an
/// [`Ipv4Prefix`](crate::Ipv4Prefix).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// The string was not in `a.b.c.d/len` form.
    Syntax(String),
    /// The prefix length was greater than 32.
    LengthOutOfRange(u8),
    /// The address had non-zero bits below the prefix length.
    HostBitsSet {
        /// The offending address as parsed.
        addr: u32,
        /// The declared prefix length.
        len: u8,
    },
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::Syntax(s) => write!(f, "invalid prefix syntax: {s:?}"),
            ParsePrefixError::LengthOutOfRange(len) => {
                write!(f, "prefix length {len} out of range (max 32)")
            }
            ParsePrefixError::HostBitsSet { addr, len } => write!(
                f,
                "address {}.{}.{}.{} has host bits set below /{len}",
                addr >> 24,
                (addr >> 16) & 0xff,
                (addr >> 8) & 0xff,
                addr & 0xff
            ),
        }
    }
}

impl Error for ParsePrefixError {}

/// Error returned when a string cannot be parsed as an
/// [`AsPath`](crate::AsPath).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsPathError {
    token: String,
}

impl ParseAsPathError {
    pub(crate) fn new(token: &str) -> Self {
        ParseAsPathError {
            token: token.to_owned(),
        }
    }

    /// The path token that failed to parse as an ASN.
    #[must_use]
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseAsPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS path token: {:?}", self.token)
    }
}

impl Error for ParseAsPathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ParseAsnError::new("ASX");
        assert!(e.to_string().contains("ASX"));
        assert!(e.to_string().starts_with("invalid"));

        let e = ParsePrefixError::LengthOutOfRange(40);
        assert!(e.to_string().contains("40"));

        let e = ParsePrefixError::HostBitsSet {
            addr: 0x0a000001,
            len: 24,
        };
        assert!(e.to_string().contains("10.0.0.1"));

        let e = ParseAsPathError::new("x");
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseAsnError>();
        assert_send_sync::<ParsePrefixError>();
        assert_send_sync::<ParseAsPathError>();
    }
}
