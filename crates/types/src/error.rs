//! Error types for parsing the textual BGP representations.

use core::fmt;
use std::error::Error;

/// Error returned when a string cannot be parsed as an [`Asn`](crate::Asn).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsnError {
    input: String,
}

impl ParseAsnError {
    pub(crate) fn new(input: &str) -> Self {
        ParseAsnError {
            input: input.to_owned(),
        }
    }

    /// The rejected input string.
    #[must_use]
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN syntax: {:?}", self.input)
    }
}

impl Error for ParseAsnError {}

/// Error returned when a string cannot be parsed as an
/// [`Ipv4Prefix`](crate::Ipv4Prefix).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// The string was not in `a.b.c.d/len` form.
    Syntax(String),
    /// The prefix length was greater than 32.
    LengthOutOfRange(u8),
    /// The address had non-zero bits below the prefix length.
    HostBitsSet {
        /// The offending address as parsed.
        addr: u32,
        /// The declared prefix length.
        len: u8,
    },
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::Syntax(s) => write!(f, "invalid prefix syntax: {s:?}"),
            ParsePrefixError::LengthOutOfRange(len) => {
                write!(f, "prefix length {len} out of range (max 32)")
            }
            ParsePrefixError::HostBitsSet { addr, len } => write!(
                f,
                "address {}.{}.{}.{} has host bits set below /{len}",
                addr >> 24,
                (addr >> 16) & 0xff,
                (addr >> 8) & 0xff,
                addr & 0xff
            ),
        }
    }
}

impl Error for ParsePrefixError {}

/// Error returned when a string cannot be parsed as an
/// [`AsPath`](crate::AsPath).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsPathError {
    token: String,
}

impl ParseAsPathError {
    pub(crate) fn new(token: &str) -> Self {
        ParseAsPathError {
            token: token.to_owned(),
        }
    }

    /// The path token that failed to parse as an ASN.
    #[must_use]
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseAsPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS path token: {:?}", self.token)
    }
}

impl Error for ParseAsPathError {}

/// A uniform, line-attributed ingest error: every strict-mode parser in the
/// workspace (CAIDA topology files, corpus dumps) converts its native error
/// into one of these so callers — the CLI in particular — can report "which
/// file-format layer rejected which line, and why" without matching on
/// per-crate error types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsppError {
    component: &'static str,
    line: Option<usize>,
    message: String,
}

impl AsppError {
    /// An error attributed to `component` (e.g. `"topology"`, `"corpus"`)
    /// at 1-based `line`.
    #[must_use]
    pub fn at_line(component: &'static str, line: usize, message: impl Into<String>) -> Self {
        AsppError {
            component,
            line: Some(line),
            message: message.into(),
        }
    }

    /// An error with no line attribution (I/O failures, whole-file issues).
    #[must_use]
    pub fn new(component: &'static str, message: impl Into<String>) -> Self {
        AsppError {
            component,
            line: None,
            message: message.into(),
        }
    }

    /// The subsystem that rejected the input.
    #[must_use]
    pub fn component(&self) -> &'static str {
        self.component
    }

    /// 1-based line number of the offending record, when attributable.
    #[must_use]
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// The human-readable diagnostic.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(
                f,
                "{} error at line {line}: {}",
                self.component, self.message
            ),
            None => write!(f, "{} error: {}", self.component, self.message),
        }
    }
}

impl Error for AsppError {}

/// What a lenient-mode ingest pass did with its input: how many records it
/// accepted, how many conflicting duplicates it resolved (deterministically,
/// first occurrence wins), and how many malformed lines it skipped — each
/// skip and conflict carrying a line-numbered note. Strict-mode parsers
/// reject instead; lenient mode *accounts*, so `accepted + conflicts +
/// skipped` always equals the number of non-comment record lines and nothing
/// is ever silently dropped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Records accepted into the result (agreeing duplicates included).
    pub accepted: usize,
    /// Conflicting duplicate records resolved by first-wins precedence.
    pub conflicts: usize,
    /// Malformed records skipped outright.
    pub skipped: usize,
    /// One line-numbered diagnostic per conflict or skip.
    pub notes: Vec<String>,
}

impl IngestReport {
    /// Counts one accepted record.
    pub fn accept(&mut self) {
        self.accepted += 1;
    }

    /// Counts one conflicting duplicate, with a line-numbered note.
    pub fn conflict(&mut self, line: usize, message: impl fmt::Display) {
        self.conflicts += 1;
        self.notes.push(format!("line {line}: {message}"));
    }

    /// Counts one skipped record, with a line-numbered note.
    pub fn skip(&mut self, line: usize, message: impl fmt::Display) {
        self.skipped += 1;
        self.notes.push(format!("line {line}: {message}"));
    }

    /// Total records seen (accepted + conflicts + skipped).
    #[must_use]
    pub fn total(&self) -> usize {
        self.accepted + self.conflicts + self.skipped
    }

    /// `true` when every record was accepted verbatim.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.conflicts == 0 && self.skipped == 0
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records accepted, {} conflicts resolved, {} skipped",
            self.accepted, self.conflicts, self.skipped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ParseAsnError::new("ASX");
        assert!(e.to_string().contains("ASX"));
        assert!(e.to_string().starts_with("invalid"));

        let e = ParsePrefixError::LengthOutOfRange(40);
        assert!(e.to_string().contains("40"));

        let e = ParsePrefixError::HostBitsSet {
            addr: 0x0a000001,
            len: 24,
        };
        assert!(e.to_string().contains("10.0.0.1"));

        let e = ParseAsPathError::new("x");
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseAsnError>();
        assert_send_sync::<ParsePrefixError>();
        assert_send_sync::<ParseAsPathError>();
        assert_send_sync::<AsppError>();
    }

    #[test]
    fn aspp_error_carries_component_and_line() {
        let e = AsppError::at_line("topology", 7, "bad record");
        assert_eq!(e.component(), "topology");
        assert_eq!(e.line(), Some(7));
        assert_eq!(e.to_string(), "topology error at line 7: bad record");
        let e = AsppError::new("corpus", "file unreadable");
        assert_eq!(e.line(), None);
        assert_eq!(e.to_string(), "corpus error: file unreadable");
    }

    #[test]
    fn ingest_report_accounts_for_every_record() {
        let mut r = IngestReport::default();
        r.accept();
        r.accept();
        r.conflict(3, "conflicting duplicate 1|2");
        r.skip(5, "garbage");
        assert_eq!(r.total(), 4);
        assert!(!r.is_clean());
        assert_eq!(r.notes.len(), 2);
        assert!(r.notes[0].starts_with("line 3:"));
        assert!(r.to_string().contains("2 records accepted"));
        assert!(IngestReport::default().is_clean());
    }
}
