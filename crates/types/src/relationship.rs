//! AS business relationships and route-learning classes.

use core::fmt;
use core::str::FromStr;

/// The business relationship of a neighbor, from the local AS's point of
/// view, following Gao's classification.
///
/// Edges in the AS graph are annotated with the neighbor's role: traffic to a
/// `Customer` earns money, traffic over a `Peer` is settlement-free, traffic
/// via a `Provider` costs money. `Sibling` links connect ASes under common
/// administration and exchange full routes in both directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Relationship {
    /// The neighbor is our customer (we are its provider).
    Customer,
    /// The neighbor is a settlement-free peer.
    Peer,
    /// The neighbor is our provider (we are its customer).
    Provider,
    /// The neighbor is a sibling AS under the same administration.
    Sibling,
}

impl Relationship {
    /// The same link as seen from the other end.
    ///
    /// ```
    /// use aspp_types::Relationship;
    /// assert_eq!(Relationship::Customer.reverse(), Relationship::Provider);
    /// assert_eq!(Relationship::Peer.reverse(), Relationship::Peer);
    /// assert_eq!(Relationship::Sibling.reverse(), Relationship::Sibling);
    /// ```
    #[must_use]
    pub const fn reverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
            Relationship::Sibling => Relationship::Sibling,
        }
    }

    /// All relationship kinds, in preference order for route selection.
    pub const ALL: [Relationship; 4] = [
        Relationship::Customer,
        Relationship::Peer,
        Relationship::Provider,
        Relationship::Sibling,
    ];
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Relationship::Customer => "customer",
            Relationship::Peer => "peer",
            Relationship::Provider => "provider",
            Relationship::Sibling => "sibling",
        };
        f.write_str(s)
    }
}

impl FromStr for Relationship {
    type Err = ParseRelationshipError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "customer" | "c2p-rev" | "p2c" => Ok(Relationship::Customer),
            "peer" | "p2p" => Ok(Relationship::Peer),
            "provider" | "c2p" => Ok(Relationship::Provider),
            "sibling" | "s2s" => Ok(Relationship::Sibling),
            other => Err(ParseRelationshipError {
                input: other.to_owned(),
            }),
        }
    }
}

/// Error returned when a string is not a relationship name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRelationshipError {
    input: String,
}

impl fmt::Display for ParseRelationshipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid relationship name: {:?}", self.input)
    }
}

impl std::error::Error for ParseRelationshipError {}

/// How a route was learned, which determines both its local preference and
/// its legal export scope (the valley-free rule).
///
/// The ordering implements the Gao–Rexford preference: routes you originate
/// beat everything, customer routes beat peer routes, peer routes beat
/// provider routes. `RouteClass` derives `Ord` with exactly that meaning —
/// **smaller is better**.
///
/// ```
/// use aspp_types::RouteClass;
///
/// assert!(RouteClass::Origin < RouteClass::FromCustomer);
/// assert!(RouteClass::FromCustomer < RouteClass::FromPeer);
/// assert!(RouteClass::FromPeer < RouteClass::FromProvider);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// The AS originates the prefix itself.
    Origin,
    /// Learned from a customer (or sibling re-export of a customer route).
    FromCustomer,
    /// Learned from a settlement-free peer.
    FromPeer,
    /// Learned from a provider.
    FromProvider,
}

impl RouteClass {
    /// The class a route acquires when learned over a link with the given
    /// neighbor relationship. Sibling links preserve the customer class
    /// (siblings exchange everything as if internal).
    ///
    /// ```
    /// use aspp_types::{Relationship, RouteClass};
    /// assert_eq!(RouteClass::from_neighbor(Relationship::Customer), RouteClass::FromCustomer);
    /// assert_eq!(RouteClass::from_neighbor(Relationship::Sibling), RouteClass::FromCustomer);
    /// ```
    #[must_use]
    pub const fn from_neighbor(rel: Relationship) -> RouteClass {
        match rel {
            Relationship::Customer | Relationship::Sibling => RouteClass::FromCustomer,
            Relationship::Peer => RouteClass::FromPeer,
            Relationship::Provider => RouteClass::FromProvider,
        }
    }

    /// Whether the valley-free export rule lets a route of this class be
    /// announced to a neighbor with relationship `to`.
    ///
    /// Origin and customer routes are exported to everyone; peer and
    /// provider routes only downhill, to customers (and siblings).
    ///
    /// ```
    /// use aspp_types::{Relationship, RouteClass};
    ///
    /// // A provider-learned route must not be re-announced to another provider…
    /// assert!(!RouteClass::FromProvider.may_export_to(Relationship::Provider));
    /// // …but flows freely to customers.
    /// assert!(RouteClass::FromProvider.may_export_to(Relationship::Customer));
    /// // Customer routes go everywhere (they earn money).
    /// assert!(RouteClass::FromCustomer.may_export_to(Relationship::Peer));
    /// ```
    #[must_use]
    pub const fn may_export_to(self, to: Relationship) -> bool {
        match self {
            RouteClass::Origin | RouteClass::FromCustomer => true,
            RouteClass::FromPeer | RouteClass::FromProvider => {
                matches!(to, Relationship::Customer | Relationship::Sibling)
            }
        }
    }
}

impl fmt::Display for RouteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteClass::Origin => "origin",
            RouteClass::FromCustomer => "from-customer",
            RouteClass::FromPeer => "from-peer",
            RouteClass::FromProvider => "from-provider",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involutive() {
        for rel in Relationship::ALL {
            assert_eq!(rel.reverse().reverse(), rel);
        }
    }

    #[test]
    fn parse_accepts_canonical_and_caida_spellings() {
        assert_eq!(
            "customer".parse::<Relationship>().unwrap(),
            Relationship::Customer
        );
        assert_eq!("p2p".parse::<Relationship>().unwrap(), Relationship::Peer);
        assert_eq!(
            "c2p".parse::<Relationship>().unwrap(),
            Relationship::Provider
        );
        assert_eq!(
            "s2s".parse::<Relationship>().unwrap(),
            Relationship::Sibling
        );
        assert!("friend".parse::<Relationship>().is_err());
    }

    #[test]
    fn display_round_trip() {
        for rel in Relationship::ALL {
            assert_eq!(rel.to_string().parse::<Relationship>().unwrap(), rel);
        }
    }

    #[test]
    fn preference_order_matches_gao_rexford() {
        let mut classes = [
            RouteClass::FromProvider,
            RouteClass::Origin,
            RouteClass::FromPeer,
            RouteClass::FromCustomer,
        ];
        classes.sort();
        assert_eq!(
            classes,
            [
                RouteClass::Origin,
                RouteClass::FromCustomer,
                RouteClass::FromPeer,
                RouteClass::FromProvider,
            ]
        );
    }

    #[test]
    fn valley_free_export_matrix() {
        use Relationship::*;
        use RouteClass::*;
        // (class, to, allowed)
        let cases = [
            (Origin, Customer, true),
            (Origin, Peer, true),
            (Origin, Provider, true),
            (FromCustomer, Customer, true),
            (FromCustomer, Peer, true),
            (FromCustomer, Provider, true),
            (FromPeer, Customer, true),
            (FromPeer, Peer, false),
            (FromPeer, Provider, false),
            (FromProvider, Customer, true),
            (FromProvider, Peer, false),
            (FromProvider, Provider, false),
            (FromPeer, Sibling, true),
            (FromProvider, Sibling, true),
        ];
        for (class, to, allowed) in cases {
            assert_eq!(
                class.may_export_to(to),
                allowed,
                "{class} -> {to} expected {allowed}"
            );
        }
    }

    #[test]
    fn sibling_links_carry_customer_class() {
        assert_eq!(
            RouteClass::from_neighbor(Relationship::Sibling),
            RouteClass::FromCustomer
        );
    }
}
