//! Public-API regression tests for `aspp-types`: behaviours a downstream
//! user relies on, exercised exactly as a downstream crate would.

use aspp_types::{well_known, Announcement, AsPath, Asn, Ipv4Prefix, Relationship, RouteClass};

#[test]
fn well_known_constants_are_the_papers_asns() {
    assert_eq!(well_known::ATT, Asn(7018));
    assert_eq!(well_known::SPRINT, Asn(1239));
    assert_eq!(well_known::NTT, Asn(2914));
    assert_eq!(well_known::LEVEL3, Asn(3356));
    assert_eq!(well_known::CHINA_TELECOM, Asn(4134));
    assert_eq!(well_known::KOREA_TELECOM, Asn(9318));
    assert_eq!(well_known::FACEBOOK, Asn(32934));
    assert_eq!(well_known::SMALL_ATTACKER, Asn(30209));
    assert_eq!(well_known::SMALL_VICTIM, Asn(12734));
}

#[test]
fn detector_segment_collapses_intermediary_prepending() {
    // Intermediary pads inside the transit segment must not change it.
    let padded: AsPath = "9 5 5 5 4 1 1".parse().unwrap();
    let plain: AsPath = "9 5 4 1 1 1 1 1".parse().unwrap();
    assert_eq!(padded.detector_segment(), plain.detector_segment());
    assert_eq!(padded.detector_segment(), vec![Asn(5), Asn(4)]);
}

#[test]
fn padding_of_reports_first_run_only() {
    // An ASN appearing in two separate runs (a poisoned/looped path a parser
    // might still hand us) reports its first run.
    let path = AsPath::from_hops([Asn(2), Asn(2), Asn(3), Asn(2)]);
    assert_eq!(path.padding_of(Asn(2)), 2);
    assert!(path.has_loop());
}

#[test]
fn prefix_ordering_is_stable_for_btreemap_use() {
    let mut prefixes: Vec<Ipv4Prefix> = ["10.0.0.0/8", "10.0.0.0/16", "9.0.0.0/8"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    prefixes.sort();
    let rendered: Vec<String> = prefixes.iter().map(ToString::to_string).collect();
    assert_eq!(rendered, vec!["9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"]);
}

#[test]
fn default_route_contains_everything() {
    let default: Ipv4Prefix = "0.0.0.0/0".parse().unwrap();
    for s in ["1.2.3.0/24", "255.255.255.255/32", "0.0.0.0/0"] {
        assert!(default.contains(&s.parse().unwrap()));
    }
    assert!(default.contains_addr(0));
    assert!(default.contains_addr(u32::MAX));
}

#[test]
fn announcement_display_round_trips_by_parts() {
    let ann = Announcement::new(
        "69.171.224.0/20".parse().unwrap(),
        "7018 3356 32934".parse().unwrap(),
    );
    let text = ann.to_string();
    let (prefix_str, path_str) = text.split_once(' ').unwrap();
    assert_eq!(prefix_str.parse::<Ipv4Prefix>().unwrap(), ann.prefix());
    assert_eq!(&path_str.parse::<AsPath>().unwrap(), ann.path());
}

#[test]
fn route_class_ordering_is_a_total_preference() {
    use RouteClass::*;
    let order = [Origin, FromCustomer, FromPeer, FromProvider];
    for (i, a) in order.iter().enumerate() {
        for (j, b) in order.iter().enumerate() {
            assert_eq!(a < b, i < j, "{a} vs {b}");
        }
    }
}

#[test]
fn relationship_round_trips_through_caida_spellings() {
    assert_eq!(
        "p2c".parse::<Relationship>().unwrap(),
        Relationship::Customer
    );
    assert_eq!(
        "c2p".parse::<Relationship>().unwrap(),
        Relationship::Provider
    );
    // Display always uses the canonical word.
    assert_eq!(Relationship::Customer.to_string(), "customer");
}

#[test]
fn strip_on_unpadded_and_single_hop_paths() {
    let mut single: AsPath = "7".parse().unwrap();
    assert_eq!(single.strip_origin_padding(1), 0);
    assert_eq!(single.to_string(), "7");

    let mut empty = AsPath::new();
    assert_eq!(empty.strip_origin_padding(3), 0);
    assert!(empty.is_empty());
}

#[test]
fn with_origin_padding_stripped_is_pure() {
    let original: AsPath = "1 2 2 2".parse().unwrap();
    let stripped = original.with_origin_padding_stripped(1);
    assert_eq!(stripped.to_string(), "1 2");
    assert_eq!(original.to_string(), "1 2 2 2");
}

#[test]
fn max_padding_vs_origin_padding() {
    // The deepest run is mid-path: Figure 6 measures max_padding, the
    // detector measures origin_padding; they must stay distinct.
    let path: AsPath = "1 6 6 6 6 2 2".parse().unwrap();
    assert_eq!(path.max_padding(), 4);
    assert_eq!(path.origin_padding(), 2);
    assert_eq!(path.padding_of(Asn(6)), 4);
}

#[test]
fn propagated_by_builds_collector_views() {
    let ann = Announcement::new("10.0.0.0/8".parse().unwrap(), "3 1".parse().unwrap());
    let relayed = ann.propagated_by(Asn(9)).propagated_by(Asn(8));
    assert_eq!(relayed.path().to_string(), "8 9 3 1");
    assert_eq!(relayed.origin(), Some(Asn(1)));
}

#[test]
fn asn_hex_independence() {
    // ASNs are decimal identities; Display must never hex-format.
    assert_eq!(Asn(0xFF).to_string(), "255");
}

#[test]
fn error_types_are_std_errors() {
    fn is_error<E: std::error::Error>(_: &E) {}
    is_error(&"x".parse::<Asn>().unwrap_err());
    is_error(&"x".parse::<Ipv4Prefix>().unwrap_err());
    is_error(&"1 x".parse::<AsPath>().unwrap_err());
}
