//! Sequence-related helpers (subset of `rand::seq::SliceRandom`).

use crate::{Rng, RngCore};

/// Uniform index into `0..ubound`, matching rand 0.8.5's `gen_index`:
/// bounds that fit in `u32` are sampled through the u32 path.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= (u32::MAX as usize) {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Extension methods on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns one uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates, high index downwards).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}
