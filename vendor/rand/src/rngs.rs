//! RNG implementations: [`StdRng`], the ChaCha12 generator of rand 0.8.

use crate::chacha::chacha_block;
use crate::{RngCore, SeedableRng};

/// The standard RNG of rand 0.8: ChaCha12, consumed through the same
/// four-block buffer discipline as `rand_core::block::BlockRng`, so the
/// `next_u32`/`next_u64` streams match rand 0.8.5 bit-for-bit.
#[derive(Clone, Debug)]
pub struct StdRng {
    key: [u32; 8],
    /// Block counter of the *next* four-block refill.
    counter: u64,
    buf: [u32; 64],
    /// Next word to consume; `64` means the buffer is exhausted.
    index: usize,
}

impl StdRng {
    fn refill(&mut self) {
        for block in 0..4u64 {
            let words = chacha_block::<6>(self.key, self.counter + block, 0);
            self.buf[block as usize * 16..(block as usize + 1) * 16].copy_from_slice(&words);
        }
        self.counter += 4;
        self.index = 0;
    }

    #[inline]
    fn read_u64_at(&self, index: usize) -> u64 {
        (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng {
            key,
            counter: 0,
            buf: [0; 64],
            index: 64,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 64 {
            self.refill();
        }
        let value = self.buf[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // Mirrors BlockRng::next_u64's three cases exactly.
        let index = self.index;
        if index < 63 {
            self.index += 2;
            self.read_u64_at(index)
        } else if index >= 64 {
            self.refill();
            self.index = 2;
            self.read_u64_at(0)
        } else {
            let lo = u64::from(self.buf[63]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Word-at-a-time fill (matches fill_via_u32_chunks for whole words).
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}
