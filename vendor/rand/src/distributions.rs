//! Standard and uniform sampling, matching rand 0.8.5's algorithms.

use crate::RngCore;

/// Types samplable from 'the standard distribution' (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const { assert!(usize::BITS == 64, "vendored rand assumes 64-bit targets") };
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: one random bit from the top of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit multiply-based [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types `Rng::gen_range` accepts (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty(&self) -> bool;
}

/// Widening multiply returning `(high, low)` halves of the product.
trait WideningMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let product = u64::from(self) * u64::from(other);
        ((product >> 32) as u32, product as u32)
    }
}

impl WideningMul for u64 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let product = u128::from(self) * u128::from(other);
        ((product >> 64) as u64, product as u64)
    }
}

impl WideningMul for usize {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let (hi, lo) = (self as u64).wmul(other as u64);
        (hi as usize, lo as usize)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                sample_single_exclusive_inner::<$ty, $unsigned, $u_large, R>(
                    self.start, self.end, rng,
                )
            }
            fn is_empty(&self) -> bool {
                !(self.start < self.end)
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                let range = (high.wrapping_sub(low) as $unsigned as $u_large).wrapping_add(1);
                if range == 0 {
                    // The full integer domain.
                    return <$u_large as Standard>::sample(rng) as $ty;
                }
                let zone = compute_zone::<$unsigned, $u_large>(range);
                loop {
                    let v = <$u_large as Standard>::sample(rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
            fn is_empty(&self) -> bool {
                !(self.start() <= self.end())
            }
        }
    };
}

#[inline]
fn compute_zone<Unsigned, ULarge>(range: ULarge) -> ULarge
where
    Unsigned: TypeWidth,
    ULarge: TypeWidth
        + Copy
        + core::ops::Shl<u32, Output = ULarge>
        + core::ops::Sub<Output = ULarge>
        + core::ops::Add<Output = ULarge>
        + core::ops::Rem<Output = ULarge>
        + LeadingZeros
        + WrappingSub
        + OneMax,
{
    if Unsigned::BITS <= 16 {
        // Small types: reject exactly (MAX - range + 1) % range values.
        let ints_to_reject = (ULarge::MAX_VALUE - range + ULarge::ONE) % range;
        ULarge::MAX_VALUE - ints_to_reject
    } else {
        (range << range.leading_zeros()).wrapping_sub_one()
    }
}

trait TypeWidth {
    const BITS: u32;
}
macro_rules! type_width {
    ($($ty:ty),*) => { $(impl TypeWidth for $ty { const BITS: u32 = <$ty>::BITS; })* };
}
type_width!(u8, u16, u32, u64, usize);

trait LeadingZeros {
    fn leading_zeros(self) -> u32;
}
trait WrappingSub {
    fn wrapping_sub_one(self) -> Self;
}
trait OneMax {
    const ONE: Self;
    const MAX_VALUE: Self;
}
macro_rules! zone_helpers {
    ($($ty:ty),*) => {
        $(
            impl LeadingZeros for $ty {
                fn leading_zeros(self) -> u32 { <$ty>::leading_zeros(self) }
            }
            impl WrappingSub for $ty {
                fn wrapping_sub_one(self) -> Self { self.wrapping_sub(1) }
            }
            impl OneMax for $ty {
                const ONE: Self = 1;
                const MAX_VALUE: Self = <$ty>::MAX;
            }
        )*
    };
}
zone_helpers!(u32, u64, usize);

#[inline]
fn sample_single_exclusive_inner<Ty, Unsigned, ULarge, R>(low: Ty, high: Ty, rng: &mut R) -> Ty
where
    R: RngCore + ?Sized,
    Ty: Copy + WrappingAddLarge<ULarge>,
    Unsigned: TypeWidth,
    ULarge: TypeWidth
        + Standard
        + Copy
        + WideningMul
        + PartialOrd
        + core::ops::Shl<u32, Output = ULarge>
        + core::ops::Sub<Output = ULarge>
        + core::ops::Add<Output = ULarge>
        + core::ops::Rem<Output = ULarge>
        + LeadingZeros
        + WrappingSub
        + OneMax,
{
    let range: ULarge = low.wrapping_range_to(high);
    let zone = compute_zone::<Unsigned, ULarge>(range);
    loop {
        let v = ULarge::sample(rng);
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return low.wrapping_add_large(hi);
        }
    }
}

/// Glue trait so one generic exclusive-range sampler covers every width.
trait WrappingAddLarge<L>: Sized {
    fn wrapping_range_to(self, high: Self) -> L;
    fn wrapping_add_large(self, offset: L) -> Self;
}

macro_rules! cast_glue {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl WrappingAddLarge<$u_large> for $ty {
            fn wrapping_range_to(self, high: Self) -> $u_large {
                high.wrapping_sub(self) as $unsigned as $u_large
            }
            fn wrapping_add_large(self, offset: $u_large) -> Self {
                self.wrapping_add(offset as $ty)
            }
        }
    };
}

cast_glue!(u8, u8, u32);
cast_glue!(u16, u16, u32);
cast_glue!(u32, u32, u32);
cast_glue!(u64, u64, u64);
cast_glue!(usize, usize, usize);
cast_glue!(i32, u32, u32);
cast_glue!(i64, u64, u64);

uniform_int_impl!(u8, u8, u32);
uniform_int_impl!(u16, u16, u32);
uniform_int_impl!(u32, u32, u32);
uniform_int_impl!(u64, u64, u64);
uniform_int_impl!(usize, usize, usize);
uniform_int_impl!(i32, u32, u32);
uniform_int_impl!(i64, u64, u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (self.start, self.end);
        let scale = high - low;
        loop {
            // A value in [1, 2): 52 random mantissa bits under exponent 0.
            let bits = (rng.next_u64() >> 12) | (1023u64 << 52);
            let value1_2 = f64::from_bits(bits);
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
        }
    }
    fn is_empty(&self) -> bool {
        // NaN bounds count as empty (same as `!(start < end)` upstream).
        self.start.partial_cmp(&self.end) != Some(core::cmp::Ordering::Less)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn inclusive_full_domain_does_not_loop() {
        let mut rng = StdRng::seed_from_u64(11);
        let _: u8 = rng.gen_range(0u8..=u8::MAX);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn small_type_zone_is_exact() {
        // For u8 ranges the rejection zone must make sampling unbiased over
        // u32 draws; spot-check the bounds hold over many samples.
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 21];
        for _ in 0..2000 {
            let v = rng.gen_range(8u8..=28);
            seen[(v - 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in 8..=28 reachable");
    }
}
