//! The ChaCha block function, matching `rand_chacha` 0.3's layout: 64-bit
//! block counter in words 12–13, 64-bit stream (always zero here) in 14–15.

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block with `DOUBLE_ROUNDS` double rounds (10 for ChaCha20,
/// 6 for the ChaCha12 inside `StdRng`).
pub(crate) fn chacha_block<const DOUBLE_ROUNDS: usize>(
    key: [u32; 8],
    counter: u64,
    stream: u64,
) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(&key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = stream as u32;
    state[15] = (stream >> 32) as u32;

    let initial = state;
    for _ in 0..DOUBLE_ROUNDS {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial) {
        *word = word.wrapping_add(init);
    }
    state
}
