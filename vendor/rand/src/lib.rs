//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of `rand` it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`choose`, `shuffle`).
//!
//! The implementation is **bit-compatible with rand 0.8.5** for this subset:
//! `StdRng` is ChaCha12 seeded through the PCG32-based `seed_from_u64`, and
//! integer/float uniform sampling uses the same widening-multiply rejection
//! scheme. Seeded topologies, corpora and experiment samples therefore match
//! the streams the test-suite seeds were originally written against.

pub mod rngs;
pub mod seq;

mod chacha;
mod distributions;

pub use distributions::SampleRange;

/// Core random number generation trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable RNG (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanded with PCG32 exactly as
    /// `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let state = *state;
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing generation methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        if p == 1.0 {
            return true;
        }
        // rand 0.8's Bernoulli: compare 64 random bits against p * 2^64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_zero_block_matches_reference() {
        // ChaCha20 keystream for the all-zero key, nonce and counter starts
        // 76 b8 e0 ad a0 f1 3d 90 (checked against OpenSSL). Validates the
        // round function shared with the 12-round variant used by StdRng.
        let block = crate::chacha::chacha_block::<10>([0u32; 8], 0, 0);
        assert_eq!(block[0].to_le_bytes(), [0x76, 0xb8, 0xe0, 0xad]);
        assert_eq!(block[1].to_le_bytes(), [0xa0, 0xf1, 0x3d, 0x90]);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u8..=32);
            assert!(y <= 32);
            let f: f64 = rng.gen_range(0.0..3.0);
            assert!((0.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_and_choose_are_seeded() {
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2 = v1.clone();
        v1.shuffle(&mut StdRng::seed_from_u64(9));
        v2.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v1.choose(&mut StdRng::seed_from_u64(3)).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut StdRng::seed_from_u64(3)).is_none());
    }
}
