//! Offline vendored shim for the one crossbeam API this workspace uses:
//! `crossbeam::thread::scope`, implemented over `std::thread::scope`
//! (stabilized in Rust 1.63, so the external crate is no longer needed).

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    /// A handle for spawning scoped threads, mirroring crossbeam's `Scope`.
    ///
    /// Spawn closures receive `&Scope` (crossbeam's signature allows nested
    /// spawns); call sites that don't nest simply ignore it with `|_|`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope again to
        /// allow nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// returning. Always `Ok` — a panicking child propagates its panic when
    /// the scope joins, exactly the case call sites `.expect(..)` on.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let sum = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    sum.fetch_add(
                        chunk.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_compiles() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::Relaxed));
    }
}
