//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// The strategy returned by [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use crate::test_runner::rng_for;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let strategy = vec(5u32..9, 0..16);
        let mut rng = rng_for("collection::bounds");
        let mut saw_empty = false;
        for _ in 0..300 {
            let v = strategy.generate(&mut rng);
            assert!(v.len() < 16);
            assert!(v.iter().all(|&x| (5..9).contains(&x)));
            saw_empty |= v.is_empty();
        }
        assert!(saw_empty, "length 0 should be reachable");
        let _unused = any::<u32>();
    }
}
