//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no access to crates.io; this crate implements
//! the slice of proptest the workspace uses: the `proptest!` macro,
//! `any::<T>()`, range / tuple / `collection::vec` strategies, `prop_map`,
//! `ProptestConfig::with_cases`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//! - Cases are generated from a deterministic per-test RNG (FNV hash of the
//!   fully-qualified test name seeding the workspace's `StdRng`), so runs are
//!   reproducible without a persistence file.
//! - There is **no shrinking**: a failing case reports the generated inputs
//!   via the assertion message only. Regressions worth keeping are promoted
//!   to explicit `#[test]` functions with the shrunk values inlined (see
//!   `tests/engine_equivalence.rs`).
//! - `.proptest-regressions` files are not consumed.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each generated
/// test runs `config.cases` random cases; `prop_assert*` failures abort the
/// test with the case index and message.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($($config:tt)*)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($($config)*); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(__rng; $($params)*);
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__err) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        __err
                    );
                }
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test, failing the case when unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*),
                    __left,
                    __right
                ),
            ));
        }
    }};
}
