//! Test-run configuration, errors and the deterministic RNG source.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-block configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (subset of `proptest::test_runner::TestCaseError`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Rejects the case with a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG for one property test: the workspace `StdRng`
/// seeded by an FNV-1a hash of the fully-qualified test name, so every run
/// of a given test explores the same case sequence.
pub fn rng_for(test_name: &str) -> StdRng {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic_per_name() {
        assert_eq!(rng_for("a::b").next_u64(), rng_for("a::b").next_u64());
        assert_ne!(rng_for("a::b").next_u64(), rng_for("a::c").next_u64());
    }
}
