//! Value-generation strategies (subset of `proptest::strategy`).

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws one value per case from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )+
    };
}

arbitrary_via_standard!(u8, u16, u32, u64, usize, i32, i64, bool, f64);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T` (`any::<u64>()` et al.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn tuple_and_map_compose() {
        let strategy = (any::<u64>(), 2usize..5).prop_map(|(seed, n)| (seed % 7, n * 2));
        let mut rng = rng_for("strategy::compose");
        for _ in 0..100 {
            let (a, b) = strategy.generate(&mut rng);
            assert!(a < 7);
            assert!((4..10).contains(&b));
        }
    }

    #[test]
    fn ranges_honor_bounds() {
        let mut rng = rng_for("strategy::ranges");
        for _ in 0..200 {
            let v = (0u8..=32).generate(&mut rng);
            assert!(v <= 32);
            let w = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&w));
        }
    }
}
