//! Offline vendored subset of the `criterion` API.
//!
//! crates.io is unreachable in the build environment, so this crate provides
//! the benchmark surface the workspace uses (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`) backed by a real wall-clock
//! harness: each benchmark is warmed up, iteration count is calibrated, and
//! median/mean per-iteration times are printed. There is no statistical
//! regression analysis, HTML report or saved baseline.
//!
//! Filtering works like criterion's: `cargo bench -- <substring>` runs only
//! benchmark IDs containing the substring.

use std::time::{Duration, Instant};

/// Total wall-clock budget for the measured phase of one benchmark.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(1000);
/// Wall-clock budget for the warm-up phase of one benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>`: take the first non-flag argument.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group; benchmark IDs are `group/name[/param]`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, 100, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.samples);
    }
}

/// A group of related benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, F, T>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
        T: ?Sized,
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        self.criterion
            .run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (subset of `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID shown as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion into [`BenchmarkId`] (accepts `&str` like criterion does).
pub trait IntoBenchmarkId {
    /// Converts into a benchmark ID.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: warm-up, iteration-count calibration, then
    /// `sample_size` samples of batched iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate one iteration's cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_BUDGET || warmup_iters == 0 {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        let per_sample = MEASUREMENT_BUDGET.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / est_iter.max(1e-9)).round() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}] (median {}, {} samples)",
        fmt_time(lo),
        fmt_time(mean),
        fmt_time(hi),
        fmt_time(median),
        sorted.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.2} ns", seconds * 1e9)
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("clean", "small").id, "clean/small");
        assert_eq!("plain".into_benchmark_id().id, "plain");
    }

    #[test]
    fn fmt_time_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
